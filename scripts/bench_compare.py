#!/usr/bin/env python3
"""Diff two BENCH_micro.json files (as written by bench/emit_json).

Usage: bench_compare.py OLD.json NEW.json [--threshold PCT] [--metric ns|speedup]
                        [--filter REGEX]

Prints a per-kernel table of deltas and exits nonzero when any kernel
regressed by more than --threshold percent (default 25). --filter restricts
the comparison (and the gate) to kernel names matching REGEX — CI uses it to
run the fleet-scale comparison separately from the microkernel gate.

Metrics:
  ns       raw ns/op (default) — for two runs on the SAME machine, e.g.
           before/after a local change:
               ./build/emit_json /tmp/before.json   # on the old commit
               ./build/emit_json /tmp/after.json    # on the new commit
               scripts/bench_compare.py /tmp/before.json /tmp/after.json
  speedup  each optimized kernel's speedup_vs_baseline ratio (new kernel vs
           its retained seed kernel, measured within one run) — portable
           across machines, so CI can gate a fresh run against the committed
           BENCH_micro.json from the reference box. Kernels without a baseline
           are skipped.
"""

import argparse
import json
import re
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    return {k["name"]: k for k in doc.get("kernels", [])}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("old")
    ap.add_argument("new")
    ap.add_argument("--threshold", type=float, default=25.0,
                    help="max tolerated regression in percent (default 25)")
    ap.add_argument("--metric", choices=("ns", "speedup"), default="ns",
                    help="ns: raw ns/op (same-machine runs); speedup: "
                         "speedup_vs_baseline ratios (cross-machine safe)")
    ap.add_argument("--filter", default=None, metavar="REGEX",
                    help="only compare kernels whose name matches REGEX")
    args = ap.parse_args()

    try:
        old, new = load(args.old), load(args.new)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    if args.filter:
        try:
            pat = re.compile(args.filter)
        except re.error as e:
            print(f"error: bad --filter regex: {e}", file=sys.stderr)
            return 2
        old = {n: k for n, k in old.items() if pat.search(n)}
        new = {n: k for n, k in new.items() if pat.search(n)}
    metric_key = "speedup_vs_baseline" if args.metric == "speedup" else "ns_per_op"
    raw_old, raw_new = old, new
    old = {n: k for n, k in old.items() if metric_key in k}
    new = {n: k for n, k in new.items() if metric_key in k}
    # Kernels present on only one side (a bench added or retired in this
    # change) are expected when a PR lands new benches together with a fresh
    # baseline: warn and skip them instead of failing the comparison. A
    # kernel present in both files but missing the metric on one side is a
    # malformed entry, not an added/retired bench — say so.
    for name in sorted(set(old) ^ set(new)):
        if name in raw_old and name in raw_new:
            side = "baseline" if name not in old else "fresh run"
            print(f"warning: kernel '{name}' lacks {metric_key} in {side} — skipped",
                  file=sys.stderr)
        else:
            side = "baseline" if name in old else "fresh run"
            print(f"warning: kernel '{name}' only in {side} — skipped", file=sys.stderr)
    shared = sorted(set(old) & set(new))
    if not shared:
        print("no kernels in common between the two files", file=sys.stderr)
        return 2

    regressions = []

    def fmt_ns(kernel):
        ns = kernel.get("ns_per_op")
        return f"{ns:.0f}" if ns is not None else "-"

    def fmt_rss(kernel):
        rss = kernel.get("peak_rss_mb")
        return f"{rss:.0f}" if rss is not None else "-"

    # Peak-RSS columns are informational (not gated): memory-heavy benches
    # like the fleet rounds report peak_rss_mb, and a footprint shift is as
    # interesting as a time shift even though RSS is too machine- and
    # allocator-dependent to fail CI on.
    has_rss = any("peak_rss_mb" in k for m in (old, new) for k in m.values())

    label = "ns/op" if args.metric == "ns" else "speedup"
    header = f"{'kernel':<34} {'old ' + label:>13} {'new ' + label:>13} {'delta':>8}"
    if args.metric == "speedup":
        # Absolute ns/op alongside the gated ratio: when a ratio drops, the
        # ns columns show WHERE it landed — the optimized kernel slowing
        # down reads very differently from its seed baseline speeding up.
        header += f" {'old ns':>12} {'new ns':>12}"
    if has_rss:
        header += f" {'old rssMB':>10} {'new rssMB':>10} {'rss delta':>10}"
    print(header)
    for name in shared:
        if args.metric == "ns":
            o, n = old[name]["ns_per_op"], new[name]["ns_per_op"]
            # ns: larger is worse.
            delta = (n - o) / o * 100.0 if o else 0.0
        else:
            o, n = old[name]["speedup_vs_baseline"], new[name]["speedup_vs_baseline"]
            # speedup: smaller is worse.
            delta = (o - n) / o * 100.0 if o else 0.0
        flag = ""
        if delta > args.threshold:
            regressions.append((name, delta))
            flag = "  <-- REGRESSION"
        row = f"{name:<34} {o:>13.2f} {n:>13.2f} {delta:>+7.1f}%"
        if args.metric == "speedup":
            row += f" {fmt_ns(old[name]):>12} {fmt_ns(new[name]):>12}"
        if has_rss:
            o_rss = old[name].get("peak_rss_mb")
            n_rss = new[name].get("peak_rss_mb")
            if o_rss and n_rss:
                rss_delta = f"{(n_rss - o_rss) / o_rss * 100.0:+.1f}%"
            else:
                rss_delta = "-"
            row += f" {fmt_rss(old[name]):>10} {fmt_rss(new[name]):>10} {rss_delta:>10}"
        print(row + flag)

    if regressions:
        print(f"\n{len(regressions)} kernel(s) regressed past {args.threshold}%",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
