// Figure 6: Algorithm 2 vs Algorithm 3 under expensive communication (paper:
// comm time 100, FEMNIST).
//
// With β large, Algorithm 2's step size δ_m = B/√(2m) keeps k fluctuating
// high — every upward excursion costs dearly. Algorithm 3 shrinks the search
// interval and suppresses the fluctuation. Emits loss/accuracy vs time and
// the two k_m traces, plus a late-training fluctuation statistic.
#include "common.h"

using namespace fedsparse;

int main(int argc, char** argv) {
  try {
    util::Flags flags(argc, argv);
    bench::CommonArgs args = bench::parse_common(flags);
    args.beta = flags.get_double("fig_beta", 100.0, "communication time (paper: 100)");
    const double max_time =
        flags.get_double("max_time", 3000.0, "normalized time budget (equal for both)");
    flags.check_unknown();
    bench::banner("fig6_alg2_vs_alg3", "Algorithm 2 vs Algorithm 3 at comm time 100");

    core::TrainerConfig base = bench::base_config(args);
    core::FederatedTrainer probe(base);
    std::printf("# D=%zu, beta=%g, rounds=%ld\n", probe.dim(), args.beta, args.rounds);

    for (const char* name : {"extended_sign_ogd", "sign_ogd"}) {
      core::TrainerConfig cfg = base;
      cfg.method = "fab_topk";
      cfg.controller.name = name;
      cfg.sim.max_time = max_time;
      cfg.sim.max_rounds = 1000000;
      const auto res = core::FederatedTrainer(cfg).run();
      const std::string label = std::string(name) == "sign_ogd" ? "algorithm2" : "algorithm3";
      bench::emit_curves(args.out_dir, "fig6_alg2_vs_alg3", label, res);
      bench::emit_k_trace(args.out_dir, "fig6_alg2_vs_alg3", label, res);

      util::RunningStat tail;
      for (std::size_t i = res.k_sequence.size() / 2; i < res.k_sequence.size(); ++i) {
        tail.add(res.k_sequence[i]);
      }
      std::printf("# %s: final_loss=%.4f final_acc=%.4f total_time=%.0f k_tail_sd=%.0f\n",
                  label.c_str(), res.final_loss, res.final_accuracy, res.total_time,
                  tail.stddev());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fig6_alg2_vs_alg3: %s\n", e.what());
    return 1;
  }
}
