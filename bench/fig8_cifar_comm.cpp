// Figure 8: the Fig. 7 experiment on the CIFAR-10-like dataset (100 clients,
// one class per client — the paper's strong non-i.i.d. setting).
//
// The paper notes (footnote 6) that the cross-sequence differences are
// smaller here: the extreme partition requires a relatively large k even when
// communication is expensive, compressing the gap between the sequences.
#include "comm_sweep.h"

int main(int argc, char** argv) {
  return fedsparse::bench::run_comm_sweep(argc, argv, "fig8_cifar_comm", "cifar",
                                          /*default_scale=*/0.1, /*default_rounds=*/120);
}
