// Ablation bench (extension beyond the paper's figures): isolates the design
// choices DESIGN.md calls out for FAB-top-k and the adaptive-k loop.
//
//   1. fairness        — FAB-top-k vs FUB-top-k at the same k (what does the
//                        ⌊k/N⌋ guarantee cost/buy?);
//   2. accumulation    — FAB-top-k with vs without the accumulated local
//                        gradient a_i (the residual mechanism the paper
//                        credits for convergence);
//   3. rounding        — stochastic (Definition 2) vs deterministic rounding
//                        of the continuous k under Algorithm 3;
//   4. probe overhead  — charging vs overlapping the k'-probe downlink
//                        (Fig. 3 step ③), which the paper treats as free;
//   5. quantization    — FAB-top-k with 4-bit stochastic quantization on the
//                        payload (the orthogonal compression the paper cites).
#include <cmath>

#include "common.h"
#include "sparsify/quantize.h"

using namespace fedsparse;

namespace {

// FAB-top-k with the accumulator disabled: every round, all residual mass is
// dropped (reset covers the full coordinate range).
class FabNoAccumulation final : public sparsify::Method {
 public:
  explicit FabNoAccumulation(std::size_t dim) : inner_(dim) {}
  std::string name() const override { return "fab_topk_noacc"; }
  sparsify::RoundOutcome round(const sparsify::RoundInput& in, std::size_t k) override {
    auto out = inner_.round(in, k);
    out.reset_kind = sparsify::RoundOutcome::ResetKind::kAll;
    out.reset_indices.clear();
    out.reset_offsets.clear();
    return out;
  }

 private:
  sparsify::FabTopK inner_;
};

void report(const char* arm, const fl::SimulationResult& res) {
  std::printf("# %-28s rounds=%-5zu time=%-9.1f final_loss=%-8.4f final_acc=%.4f\n", arm,
              res.rounds_run, res.total_time, res.final_loss, res.final_accuracy);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    util::Flags flags(argc, argv);
    bench::CommonArgs args = bench::parse_common(flags);
    args.rounds = flags.get_int("fig_rounds", 250, "rounds per arm");
    const double k_frac = flags.get_double("k_frac", 0.0025, "fixed-k arms: k/D");
    flags.check_unknown();
    bench::banner("ablation_design", "FAB-top-k and adaptive-k design-choice ablations");

    core::TrainerConfig base = bench::base_config(args);
    base.sim.max_rounds = static_cast<std::size_t>(args.rounds);
    core::FederatedTrainer probe(base);
    const double d = static_cast<double>(probe.dim());
    const double k = std::max(2.0, std::round(k_frac * d));
    std::printf("# D=%.0f fixed k=%.0f beta=%g rounds=%ld\n", d, k, args.beta, args.rounds);

    // --- 1 & 2: fairness and accumulation at fixed k --------------------
    {
      core::TrainerConfig cfg = base;
      cfg.method = "fab_topk";
      cfg.controller.name = "fixed";
      cfg.controller.fixed_k = k;
      const auto res = core::FederatedTrainer(cfg).run();
      bench::emit_curves(args.out_dir, "ablation_design", "fab", res);
      report("fab_topk (paper)", res);
    }
    {
      core::TrainerConfig cfg = base;
      cfg.method = "fub_topk";
      cfg.controller.name = "fixed";
      cfg.controller.fixed_k = k;
      const auto res = core::FederatedTrainer(cfg).run();
      bench::emit_curves(args.out_dir, "ablation_design", "fub_no_fairness", res);
      report("fub_topk (no fairness)", res);
    }
    {
      core::TrainerConfig cfg = base;
      cfg.controller.name = "fixed";
      cfg.controller.fixed_k = k;
      const auto data_cfg = core::resolve_dataset(cfg.dataset);
      auto factory = core::resolve_model(cfg.model, data_cfg);
      fl::Simulation sim(cfg.sim, data::make_synthetic(data_cfg), factory,
                         std::make_unique<FabNoAccumulation>(probe.dim()),
                         std::make_unique<online::FixedK>(k));
      const auto res = sim.run();
      bench::emit_curves(args.out_dir, "ablation_design", "fab_no_accumulation", res);
      report("fab_topk (no accumulation)", res);
    }

    {
      core::TrainerConfig cfg = base;
      cfg.controller.name = "fixed";
      cfg.controller.fixed_k = k;
      const auto data_cfg = core::resolve_dataset(cfg.dataset);
      auto factory = core::resolve_model(cfg.model, data_cfg);
      auto quantized = std::make_unique<sparsify::QuantizedMethod>(
          std::make_unique<sparsify::FabTopK>(probe.dim()), sparsify::QuantizerConfig{});
      fl::Simulation sim(cfg.sim, data::make_synthetic(data_cfg), factory, std::move(quantized),
                         std::make_unique<online::FixedK>(k));
      const auto res = sim.run();
      bench::emit_curves(args.out_dir, "ablation_design", "fab_quantized_4bit", res);
      report("fab_topk + 4-bit quant", res);
    }

    // --- 3: stochastic vs deterministic rounding under Algorithm 3 ------
    for (const bool stochastic : {true, false}) {
      core::TrainerConfig cfg = base;
      cfg.method = "fab_topk";
      cfg.controller.name = "extended_sign_ogd";
      cfg.sim.stochastic_rounding = stochastic;
      const auto res = core::FederatedTrainer(cfg).run();
      const char* label = stochastic ? "rounding_stochastic" : "rounding_deterministic";
      bench::emit_curves(args.out_dir, "ablation_design", label, res);
      report(label, res);
    }

    // --- 4: charging the probe's extra downlink -------------------------
    for (const bool charge : {false, true}) {
      core::TrainerConfig cfg = base;
      cfg.method = "fab_topk";
      cfg.controller.name = "extended_sign_ogd";
      cfg.sim.charge_probe_overhead = charge;
      const auto res = core::FederatedTrainer(cfg).run();
      const char* label = charge ? "probe_charged" : "probe_overlapped";
      bench::emit_curves(args.out_dir, "ablation_design", label, res);
      report(label, res);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ablation_design: %s\n", e.what());
    return 1;
  }
}
