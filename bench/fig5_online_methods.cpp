// Figure 5: adaptive k with different online-learning methods (paper: comm
// time 10, FEMNIST, FAB-top-k substrate).
//
// Compares the proposed Algorithm 3 (α = 1.5, Mu = 20, kmin = 0.002·D,
// kmax = D) against value-based gradient descent, EXP3, and the continuous
// bandit. Emits loss/accuracy vs time and the k_m trace of each method.
//
// Expected shape (paper): the proposed method reaches low loss fastest and
// holds a far more stable k_m than EXP3 / continuous bandit.
#include "common.h"

using namespace fedsparse;

int main(int argc, char** argv) {
  try {
    util::Flags flags(argc, argv);
    bench::CommonArgs args = bench::parse_common(flags);
    const double alpha = flags.get_double("alpha", 1.5, "Algorithm 3 interval expansion");
    const long mu = flags.get_int("mu", 20, "Algorithm 3 update window Mu");
    const double max_time =
        flags.get_double("max_time", 700.0, "normalized time budget (equal across methods)");
    flags.check_unknown();
    bench::banner("fig5_online_methods", "adaptive-k comparison across online learners");

    core::TrainerConfig base = bench::base_config(args);
    core::FederatedTrainer probe(base);
    std::printf("# D=%zu, beta=%g, rounds=%ld\n", probe.dim(), args.beta, args.rounds);

    const char* controllers[] = {"extended_sign_ogd", "value_based", "exp3",
                                 "continuous_bandit"};
    for (const char* name : controllers) {
      core::TrainerConfig cfg = base;
      cfg.method = "fab_topk";
      cfg.controller.name = name;
      cfg.controller.alpha = alpha;
      cfg.controller.update_window = static_cast<std::size_t>(mu);
      cfg.sim.max_time = max_time;  // compare methods at equal normalized time
      cfg.sim.max_rounds = 1000000;
      const auto res = core::FederatedTrainer(cfg).run();
      bench::emit_curves(args.out_dir, "fig5_online_methods", name, res);
      bench::emit_k_trace(args.out_dir, "fig5_online_methods", name, res);

      // k_m stability: standard deviation over the final half of training.
      util::RunningStat tail;
      for (std::size_t i = res.k_sequence.size() / 2; i < res.k_sequence.size(); ++i) {
        tail.add(res.k_sequence[i]);
      }
      std::printf("# %s: rounds=%zu time=%.0f final_loss=%.4f final_acc=%.4f k_tail_mean=%.0f "
                  "k_tail_sd=%.0f invalid_probe_rounds=%zu\n",
                  name, res.rounds_run, res.total_time, res.final_loss, res.final_accuracy,
                  tail.mean(), tail.stddev(), res.invalid_probe_rounds);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fig5_online_methods: %s\n", e.what());
    return 1;
  }
}
