// Shared implementation of the Fig. 7 / Fig. 8 experiment: learn {k_m,β}
// sequences with Algorithm 3 across communication times, then cross-apply
// each sequence under other communication times.
#pragma once

#include <sstream>
#include <string>
#include <vector>

#include "common.h"

namespace fedsparse::bench {

inline std::vector<double> parse_double_list(const std::string& csv) {
  std::vector<double> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stod(item));
  }
  return out;
}

inline std::string beta_tag(double beta) {
  std::string s = util::CsvWriter::format(beta);
  for (auto& c : s) {
    if (c == '.') c = 'p';
  }
  return s;
}

/// `figure` names the output directory ("fig7_femnist_comm" /
/// "fig8_cifar_comm"); `default_rounds` sizes the per-run budget.
inline int run_comm_sweep(int argc, char** argv, const char* figure,
                          const char* default_dataset, double default_scale,
                          long default_rounds) {
  try {
    util::Flags flags(argc, argv);
    CommonArgs args = parse_common(flags);
    if (!flags.has("dataset")) args.dataset = default_dataset;
    if (!flags.has("scale")) args.scale = default_scale;
    args.rounds = flags.get_int("fig_rounds", default_rounds, "rounds per run");
    const auto learn_betas =
        parse_double_list(flags.get_string("learn_betas", "0.1,1,10,100", "betas to learn under"));
    const auto replay_betas = parse_double_list(flags.get_string(
        "replay_betas", "0.1,100", "betas to replay each sequence under (full: 0.1,1,10,100)"));
    flags.check_unknown();
    banner(figure, "adaptive k across communication times + cross-application");

    core::TrainerConfig base = base_config(args);
    base.sim.max_rounds = static_cast<std::size_t>(args.rounds);
    core::FederatedTrainer probe(base);
    std::printf("# dataset=%s D=%zu rounds=%ld\n", args.dataset.c_str(), probe.dim(),
                args.rounds);

    // Phase 1: learn a k sequence per communication time (top row of the
    // paper's figure: the {k_m,β} traces).
    std::vector<std::vector<double>> sequences;
    for (const double beta : learn_betas) {
      core::TrainerConfig cfg = base;
      cfg.method = "fab_topk";
      cfg.controller.name = "extended_sign_ogd";
      cfg.sim.comm_time = beta;
      const auto res = core::FederatedTrainer(cfg).run();
      const std::string label = "learn_beta" + beta_tag(beta);
      emit_k_trace(args.out_dir, figure, label, res);
      emit_curves(args.out_dir, figure, label, res);
      sequences.push_back(res.k_sequence);
      util::RunningStat tail;
      for (std::size_t i = res.k_sequence.size() / 2; i < res.k_sequence.size(); ++i) {
        tail.add(res.k_sequence[i]);
      }
      std::printf("# learned beta=%g: k_tail_mean=%.0f final_loss=%.4f final_acc=%.4f\n", beta,
                  tail.mean(), res.final_loss, res.final_accuracy);
    }

    // Phase 2: replay every sequence under every requested β (middle/bottom
    // rows: loss and accuracy of {k_m,β'} applied at β). Sequences are
    // compared *at equal normalized time*: for each applied β we take the
    // largest time all replays reached and read each loss/accuracy curve at
    // that point — a fixed round count would favour expensive sequences.
    util::CsvWriter matrix(std::string(args.out_dir) + "/" + figure + "/cross_matrix.csv", true,
                           std::string(figure) + "/cross");
    matrix.header(
        {"sequence_beta", "applied_beta", "loss_at_common_time", "accuracy_at_common_time",
         "common_time"});
    for (const double beta : replay_betas) {
      std::vector<fl::SimulationResult> runs;
      for (std::size_t s = 0; s < sequences.size(); ++s) {
        core::TrainerConfig cfg = base;
        cfg.method = "fab_topk";
        cfg.sim.comm_time = beta;
        auto res = run_with_controller(cfg, std::make_unique<online::ReplayK>(sequences[s]));
        emit_curves(args.out_dir, figure,
                    "seq" + beta_tag(learn_betas[s]) + "_at_beta" + beta_tag(beta), res);
        runs.push_back(std::move(res));
      }
      double common_time = 1e300;
      for (const auto& r : runs) common_time = std::min(common_time, r.total_time);
      for (std::size_t s = 0; s < runs.size(); ++s) {
        // Last evaluated point at or before the common time horizon.
        double loss = runs[s].final_loss, acc = runs[s].final_accuracy;
        for (const auto& rec : runs[s].records) {
          if (std::isnan(rec.global_loss) || rec.time > common_time) continue;
          loss = rec.global_loss;
          acc = rec.accuracy;
        }
        matrix.row({learn_betas[s], beta, loss, acc, common_time});
      }
    }
    std::printf("# expectation: for each applied beta, the row whose sequence_beta matches it "
                "attains the best loss/accuracy at the common time (diagonal dominance)\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", figure, e.what());
    return 1;
  }
}

}  // namespace fedsparse::bench
