// Figure 1: empirical validation of Assumption 1 (independent costs).
//
// The paper trains with four different sparsity degrees k' until the global
// loss reaches a target ψ, then switches every run to the same small k. If
// Assumption 1 holds, the post-switch loss trajectories coincide regardless
// of the pre-switch k'. We replicate that protocol and additionally print the
// maximum pairwise divergence of the aligned post-switch curves.
//
// Paper setting: FEMNIST, 156 clients, pre-ψ k ∈ {D, 10000, 5000, 1000},
// post-ψ k = 1000, ψ ∈ {1.5, 1.0}. Scaled default: same k/D ratios against
// the scaled model dimension; ψ chosen inside our loss range.
#include <algorithm>
#include <cmath>

#include "common.h"

using namespace fedsparse;

int main(int argc, char** argv) {
  try {
    util::Flags flags(argc, argv);
    bench::CommonArgs args = bench::parse_common(flags);
    args.rounds = flags.get_int("fig_rounds", 500, "cap on pre-switch rounds");
    const double psi = flags.get_double("psi", 2.8, "target loss psi at which k switches");
    const long post_rounds = flags.get_int("post_rounds", 120, "rounds after the switch");
    flags.check_unknown();
    bench::banner("fig1_assumption", "loss progression is independent of pre-psi sparsity");

    core::TrainerConfig base = bench::base_config(args);
    base.sim.eval_every = 5;
    core::FederatedTrainer probe(base);
    const double d = static_cast<double>(probe.dim());
    // Paper ratios for D > 400,000: {D, 10000, 5000, 1000} ≈ {1, 1/40, 1/80, 1/400}·D;
    // we keep milder ratios so the small-k runs still reach psi quickly.
    const std::vector<double> pre_k = {d, d / 10.0, d / 20.0, d / 50.0};
    const double post_k = d / 50.0;

    std::printf("# D=%.0f, psi=%.2f, post-switch k=%.0f\n", d, psi, post_k);

    std::vector<std::vector<double>> aligned;  // per run: post-switch losses
    for (const double k : pre_k) {
      core::TrainerConfig cfg = base;
      cfg.controller.name = "fixed";
      cfg.controller.fixed_k = k;
      cfg.sim.switch_at_loss = psi;
      cfg.sim.switch_to_k = post_k;
      cfg.sim.max_rounds = static_cast<std::size_t>(args.rounds + post_rounds);
      const auto res = core::FederatedTrainer(cfg).run();

      // Locate the switch round: the first evaluation whose global loss is at
      // or below ψ (this also works for the run whose pre-ψ k equals the
      // post-ψ k, where the k trace alone carries no signal).
      std::size_t switch_round = res.records.size() + 1;
      for (const auto& r : res.records) {
        if (!std::isnan(r.global_loss) && r.global_loss <= psi) {
          switch_round = r.round;
          break;
        }
      }
      if (switch_round > res.records.size()) {
        std::printf("# WARNING: pre-k=%ld never reached psi=%.2f within %ld rounds; "
                    "excluded from alignment\n",
                    static_cast<long>(k), psi, args.rounds + post_rounds);
        continue;
      }
      const std::string label = "prek_" + std::to_string(static_cast<long>(k));
      util::CsvWriter csv(args.out_dir + "/fig1_assumption/" + label + ".csv", true,
                          "fig1/" + label);
      csv.header({"rounds_since_switch", "global_loss"});
      std::vector<double> post;
      for (const auto& r : res.records) {
        if (std::isnan(r.global_loss) || r.round < switch_round) continue;
        const double x = static_cast<double>(r.round) - static_cast<double>(switch_round);
        csv.row({x, r.global_loss});
        post.push_back(r.global_loss);
      }
      aligned.push_back(std::move(post));
    }

    // Assumption-1 score: max pairwise |loss difference| at matching offsets.
    std::size_t common = aligned.empty() ? 0 : aligned[0].size();
    for (const auto& a : aligned) common = std::min(common, a.size());
    double max_div = 0.0;
    for (std::size_t t = 0; t < common; ++t) {
      double lo = 1e18, hi = -1e18;
      for (const auto& a : aligned) {
        lo = std::min(lo, a[t]);
        hi = std::max(hi, a[t]);
      }
      max_div = std::max(max_div, hi - lo);
    }
    std::printf("# assumption1_check,common_points=%zu,max_pairwise_divergence=%.4f\n", common,
                max_div);
    std::printf("# (paper: curves 'remain almost the same' after reaching psi)\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fig1_assumption: %s\n", e.what());
    return 1;
  }
}
