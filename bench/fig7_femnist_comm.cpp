// Figure 7: adaptive k across communication times on FEMNIST, with
// cross-application of the learned sequences.
//
// Phase 1: for each β ∈ {0.1, 1, 10, 100}, Algorithm 3 learns a sequence
// {k_m,β} (top row of the paper's figure: k traces per β).
// Phase 2: each learned sequence is replayed under other communication times
// (middle/bottom rows: loss and accuracy when {k_m,β'} is applied at β). The
// sequence learned *for* a communication time should win *at* that
// communication time — the diagonal dominance the paper reports.
//
// Default replays each sequence under the two extreme βs only; pass
// --replay_betas=0.1,1,10,100 for the paper's full matrix.
#include "comm_sweep.h"

int main(int argc, char** argv) {
  return fedsparse::bench::run_comm_sweep(argc, argv, "fig7_femnist_comm", "femnist",
                                          /*default_scale=*/0.08, /*default_rounds=*/200);
}
