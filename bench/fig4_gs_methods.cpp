// Figure 4: GS method comparison at fixed k (paper: k = 1000, comm time 10,
// FEMNIST).
//
// Three panels: (left) global loss vs normalized time, (middle) test accuracy
// vs normalized time, (right) CDF over clients of gradient elements used per
// round. Methods: FAB-top-k (proposed), FUB-top-k, unidirectional top-k,
// periodic-k, FedAvg at matched communication budget, always-send-all.
//
// Expected shape (paper): FAB ≈ FUB lead; unidirectional close behind;
// send-all and periodic slower; FedAvg slowest. FAB's contribution CDF is
// bounded away from zero (fairness); FUB's is not.
#include <cmath>

#include "common.h"

using namespace fedsparse;

int main(int argc, char** argv) {
  try {
    util::Flags flags(argc, argv);
    bench::CommonArgs args = bench::parse_common(flags);
    // The paper uses k/D = 0.0025 with N = 156 clients, i.e. N·k/D ≈ 0.39 —
    // the quantity that governs unidirectional top-k's downlink blow-up. At
    // the scaled default of ~12 clients we preserve N·k/D (not k/D), so the
    // method comparison keeps the paper's relative cost geometry. Pass
    // --k_frac=0.0025 --scale=1 for the literal paper setting.
    const double k_frac =
        flags.get_double("k_frac", 0.03, "sparsity as fraction of D (paper-equivalent at N=12)");
    const double max_time = flags.get_double("max_time", 500.0, "normalized time budget");
    flags.check_unknown();
    bench::banner("fig4_gs_methods", "loss/accuracy vs time + per-client contribution CDF");

    core::TrainerConfig base = bench::base_config(args);
    core::FederatedTrainer probe(base);
    const double d = static_cast<double>(probe.dim());
    const double k = std::max(2.0, std::round(k_frac * d));
    std::printf("# D=%.0f, k=%.0f, beta=%g, time budget=%g\n", d, k, args.beta, max_time);

    const char* methods[] = {"fab_topk",  "fub_topk", "unidirectional_topk",
                             "periodic", "fedavg",   "send_all"};
    for (const char* method : methods) {
      core::TrainerConfig cfg = base;
      cfg.method = method;
      cfg.controller.name = "fixed";
      cfg.controller.fixed_k = k;
      cfg.sim.max_time = max_time;
      cfg.sim.max_rounds = 1000000;  // the time budget is the binding stop
      const auto res = core::FederatedTrainer(cfg).run();
      bench::emit_curves(args.out_dir, "fig4_gs_methods", method, res);

      // Right panel: CDF over clients of average contributed elements/round.
      const auto per_round = fl::contribution_per_round(res.contributed_totals, res.rounds_run);
      util::EmpiricalCdf cdf(per_round);
      util::CsvWriter csv(args.out_dir + "/fig4_gs_methods/" + method + "_cdf.csv", true,
                          std::string("fig4/") + method + "_cdf");
      csv.header({"elements_per_round", "cdf"});
      for (const auto& [x, p] : cdf.steps()) csv.row({x, p});
      std::printf("# %s: rounds=%zu final_loss=%.4f final_acc=%.4f min_contrib=%.2f\n", method,
                  res.rounds_run, res.final_loss, res.final_accuracy,
                  per_round.empty() ? 0.0 : *std::min_element(per_round.begin(), per_round.end()));
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fig4_gs_methods: %s\n", e.what());
    return 1;
  }
}
