// Micro-benchmarks of the primitives on the per-round hot path: top-k
// selection (seed heap vs quickselect), the FAB-top-k server selection
// (κ search + aggregation), accumulator updates, sparse algebra, and the
// GEMM kernel under the models (seed scalar loop vs blocked micro-kernel).
//
// Not a paper figure — this quantifies the Section III-B complexity claims
// (client sort O(D log D) vs our O(D) expected quickselect; server
// O(ND log D)). bench/emit_json.cpp runs the same kernel pairs without the
// google-benchmark dependency and writes BENCH_micro.json for CI tracking.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "nn/models.h"
#include "sparsify/accumulator.h"
#include "sparsify/fab_topk.h"
#include "sparsify/method.h"
#include "sparsify/sparse_vector.h"
#include "sparsify/topk.h"
#include "tensor/matrix.h"
#include "util/rng.h"

namespace {

using namespace fedsparse;

std::vector<float> random_vec(std::size_t d, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(d);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

// Seed implementation (bounded min-heap, O(D log k)) — the "before" side of
// every top-k comparison, kept callable so speedups stay measurable in-tree.
void BM_TopKHeap(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto v = random_vec(d, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparsify::top_k_entries_heap({v.data(), v.size()}, k));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(d));
}
BENCHMARK(BM_TopKHeap)
    ->Args({1 << 14, 256})
    ->Args({1 << 17, 4096})
    ->Args({1 << 20, 1000});

// Production path: sampled-threshold + nth_element quickselect through a
// reused workspace (zero steady-state allocations).
void BM_TopKSelect(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto v = random_vec(d, 1);
  sparsify::TopKWorkspace ws;
  sparsify::SparseVector out;
  for (auto _ : state) {
    sparsify::top_k_entries({v.data(), v.size()}, k, ws, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(d));
}
BENCHMARK(BM_TopKSelect)
    ->Args({1 << 10, 16})
    ->Args({1 << 14, 16})
    ->Args({1 << 14, 256})
    ->Args({1 << 17, 256})
    ->Args({1 << 17, 4096})
    ->Args({1 << 20, 1000});

void BM_FabServerRound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto d = static_cast<std::size_t>(state.range(1));
  const std::size_t k = d / 100 + 1;
  std::vector<std::vector<float>> vecs;
  for (std::size_t i = 0; i < n; ++i) vecs.push_back(random_vec(d, i + 1));
  std::vector<double> weights(n, 1.0 / static_cast<double>(n));
  sparsify::RoundInput in;
  in.dim = d;
  in.round = 1;
  in.data_weights = {weights.data(), weights.size()};
  for (const auto& v : vecs) in.client_vectors.push_back({v.data(), v.size()});
  sparsify::FabTopK method(d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(method.round(in, k));
  }
}
BENCHMARK(BM_FabServerRound)->Args({10, 1 << 14})->Args({100, 1 << 14})->Args({10, 1 << 17});

void BM_AccumulatorAdd(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  sparsify::GradientAccumulator acc(d);
  const auto g = random_vec(d, 3);
  for (auto _ : state) {
    acc.add({g.data(), g.size()});
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(d * sizeof(float)));
}
BENCHMARK(BM_AccumulatorAdd)->Arg(1 << 14)->Arg(1 << 17);

// Mostly-zero source gradient: the 8-lane add skips all-zero source groups
// without touching the destination, so sparse adds run at read-only speed.
void BM_AccumulatorAddSparse(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto dirty_pct = static_cast<std::size_t>(state.range(1));
  sparsify::GradientAccumulator acc(d);
  auto g = random_vec(d, 3);
  const std::size_t period = 100 / std::max<std::size_t>(1, dirty_pct);
  for (std::size_t i = 0; i < d; ++i) {
    if ((i / sparsify::kAccumulatorChunk) % period != 0) g[i] = 0.0f;
  }
  for (auto _ : state) {
    acc.add({g.data(), g.size()});
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(d * sizeof(float)));
}
BENCHMARK(BM_AccumulatorAddSparse)->Args({1 << 17, 1})->Args({1 << 17, 10});

// Chunk-tiered server rounds at scale: selection + aggregation over n
// clients whose accumulators hold gradient in dirty_pct% of their chunks.
// tiered=1 hands the methods the accumulator chunk summaries (the live
// simulation path — scans prune clean/quiet chunks); tiered=0 withholds
// them, forcing the dense traversal of the same build. Outcomes are
// byte-identical; bench/emit_json.cpp mirrors the N=1000 pairs into
// BENCH_micro.json, where CI gates the tiered/dense speedup ratios.
void BM_ServerRoundTiered(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto dirty_pct = static_cast<std::size_t>(state.range(1));
  const bool tiered = state.range(2) != 0;
  const std::size_t d = 1 << 17;
  const std::size_t k = dirty_pct == 100 ? d / 100 + 1 : 128;
  const std::size_t chunks = sparsify::accumulator_chunks(d);
  const std::size_t dirty = std::max<std::size_t>(1, chunks * dirty_pct / 100);
  const std::size_t stride = chunks / dirty;
  std::vector<sparsify::GradientAccumulator> accs;
  accs.reserve(n);
  std::vector<float> grad(d);
  for (std::size_t i = 0; i < n; ++i) {
    util::Rng rng(1000 + i);
    std::fill(grad.begin(), grad.end(), 0.0f);
    for (std::size_t c = 0; c < dirty; ++c) {
      const std::size_t begin = (c * stride) * sparsify::kAccumulatorChunk;
      const std::size_t end = std::min(d, begin + sparsify::kAccumulatorChunk);
      for (std::size_t j = begin; j < end; ++j) grad[j] = static_cast<float>(rng.normal());
    }
    accs.emplace_back(d);
    accs.back().add({grad.data(), grad.size()});
  }
  std::vector<double> weights(n, 1.0 / static_cast<double>(n));
  sparsify::RoundInput in;
  in.dim = d;
  in.round = 1;
  in.data_weights = {weights.data(), weights.size()};
  for (const auto& acc : accs) {
    in.client_vectors.push_back(acc.value());
    if (tiered) in.client_chunk_max.push_back(acc.chunk_max());
  }
  sparsify::FabTopK method(d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(method.round(in, k));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * d));
}
BENCHMARK(BM_ServerRoundTiered)
    ->Args({100, 100, 1})
    ->Args({1000, 100, 0})
    ->Args({1000, 100, 1})
    ->Args({1000, 10, 0})
    ->Args({1000, 10, 1})
    ->Args({1000, 1, 0})
    ->Args({1000, 1, 1});

void BM_SparseSubtract(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto v = random_vec(1 << 17, 5);
  auto a = sparsify::top_k_entries({v.data(), v.size()}, k);
  auto b = sparsify::top_k_entries({v.data(), v.size()}, k / 2);
  sparsify::sort_by_index(a);
  sparsify::sort_by_index(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparsify::sparse_subtract(a, b));
  }
}
BENCHMARK(BM_SparseSubtract)->Arg(256)->Arg(4096);

// Seed scalar triple loop — the "before" side of the GEMM comparison.
void BM_GemmReference(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  tensor::Matrix a(n, n), b(n, n), c(n, n);
  util::Rng rng(7);
  for (auto& x : a.flat()) x = static_cast<float>(rng.normal());
  for (auto& x : b.flat()) x = static_cast<float>(rng.normal());
  for (auto _ : state) {
    tensor::zero(c.flat());
    tensor::detail::gemm_nn_reference(a, b, 1.0f, c);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmReference)->Arg(64)->Arg(128)->Arg(256);

// Production path: mc/kc/nc-blocked with the 4x16 register micro-kernel.
void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  tensor::Matrix a(n, n), b(n, n), c(n, n);
  util::Rng rng(7);
  for (auto& x : a.flat()) x = static_cast<float>(rng.normal());
  for (auto& x : b.flat()) x = static_cast<float>(rng.normal());
  for (auto _ : state) {
    tensor::gemm(a, false, b, false, 1.0f, 0.0f, c);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_MlpForwardBackward(benchmark::State& state) {
  util::Rng rng(9);
  auto model = nn::mlp(784, {static_cast<std::size_t>(state.range(0))}, 62)(rng);
  tensor::Matrix x(32, 784);
  for (auto& v : x.flat()) v = static_cast<float>(rng.normal());
  std::vector<int> y(32);
  for (auto& v : y) v = static_cast<int>(rng.uniform_u64(62));
  for (auto _ : state) {
    model->zero_grad();
    benchmark::DoNotOptimize(model->forward_loss_grad(x, y));
  }
}
BENCHMARK(BM_MlpForwardBackward)->Arg(32)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
