// Scenario sweep: the adaptive controller (Algorithm 3) across the named
// network/device scenarios of fl/network.h — uniform, bimodal fast/slow,
// long-tail mobile, metered WAN.
//
// For every scenario the harness runs the same federated task to a common
// target loss and reports: composite cost at the target, rounds, the k the
// controller settled on (tail mean), the straggler that bound the most
// rounds, and how many rounds lost clients to churn. The headline claim this
// pins (see docs/architecture.md): under bimodal fast/slow links the
// controller converges to a *smaller* k than under uniform links at equal
// loss, because the slow quarter's uplink makes every transmitted value
// dearer — exactly the Section V trade-off the paper's online learner is
// supposed to track, now with heterogeneity it was never evaluated under.
//
// Emitted CSV series (echoed to stdout, written under --out_dir):
//   summary.csv               one row per scenario
//   <scenario>_curve.csv      (round, time, global_loss, accuracy, k)
//   <scenario>_k.csv          the adaptive k_m trace
//   <scenario>_traffic.csv    realized per-client bytes + rounds participated
//
//   ./bench/scenario_sweep [--rounds=250] [--target_loss=1.2] [--smoke]
//   --smoke caps every scenario at 2 rounds (the CI tier-1 case: plumbing
//   only, no convergence claims).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "common.h"
#include "data/synthetic.h"
#include "fl/simulation.h"
#include "nn/models.h"
#include "online/controller.h"
#include "online/extended_sign_ogd.h"
#include "sparsify/method.h"

namespace {

using namespace fedsparse;

struct ScenarioRun {
  fl::SimulationResult result;
  std::size_t offline_rounds = 0;  // rounds with at least one client offline
};

ScenarioRun run_scenario(const bench::CommonArgs& a, const std::string& name, long rounds,
                         double target_loss) {
  core::TrainerConfig cfg = bench::base_config(a);
  cfg.method = "fab_topk";
  cfg.scenario = name;
  cfg.controller.name = "extended_sign_ogd";
  cfg.sim.max_rounds = static_cast<std::size_t>(rounds);
  cfg.sim.target_loss = target_loss;

  ScenarioRun run;
  core::FederatedTrainer trainer(cfg);
  run.result = trainer.run();
  for (const auto& r : run.result.records) {
    if (r.participants < trainer.dataset_config().num_clients) ++run.offline_rounds;
  }
  return run;
}

void emit_traffic(const std::string& out_dir, const std::string& name,
                  const fl::SimulationResult& res) {
  util::CsvWriter csv(out_dir + "/scenario_sweep/" + name + "_traffic.csv",
                      /*echo_stdout=*/true, "scenario_sweep/" + name + "_traffic");
  csv.header({"client", "rounds_participated", "uplink_bytes", "downlink_bytes"});
  for (const auto& row : fl::client_traffic_rows(res.client_uplink_values,
                                                 res.client_downlink_values,
                                                 res.client_rounds_participated)) {
    csv.row({static_cast<double>(row.client), static_cast<double>(row.rounds_participated),
             row.uplink_bytes, row.downlink_bytes});
  }
}

// One sharded churn_heavy round at fleet scale, run under --smoke so tier-1
// CI exercises the mega-fleet path end to end (per-shard fleets, fleet
// workspace economy, O(touched-clients) scans over a mostly-offline
// population) on a real Simulation — not just the method-level benches.
// Direct construction (no trainer): the dataset stays a 4x4 toy, only the
// client count is fleet-sized.
void fleet_smoke() {
  std::printf("\n== sharded fleet smoke: one churn_heavy round at N=10000 ==\n");
  data::SyntheticConfig dc;
  dc.num_classes = 4;
  dc.channels = 1;
  dc.height = 4;
  dc.width = 4;
  dc.num_clients = 10000;
  dc.samples_per_client = 2;
  dc.test_samples = 32;
  dc.seed = 11;
  fl::SimulationConfig cfg;
  cfg.batch = 2;
  cfg.max_rounds = 1;
  cfg.eval_samples_per_client = 1;
  cfg.eval_test_samples = 16;
  cfg.seed = 11;
  // Force a pool even on a 1-core CI box (threads=0 resolves to hardware
  // concurrency there) so shard auto-selection actually engages the sharded
  // round path — the point of this smoke.
  cfg.threads = 2;
  fl::apply_scenario(fl::make_scenario("churn_heavy", dc.num_clients, cfg.seed), cfg);
  auto dataset = data::make_synthetic(dc);
  auto factory = nn::mlp(16, {12}, 4);
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  fl::Simulation sim(cfg, std::move(dataset), factory, sparsify::make_method("fab_topk", dim, 5),
                     std::make_unique<online::FixedK>(20.0));
  const fl::SimulationResult res = sim.run();
  const std::size_t participants = res.records.empty() ? 0 : res.records.front().participants;
  std::printf("fleet smoke: %zu of %zu clients participated (churn_heavy pi_on ~ 0.27)\n",
              participants, sim.num_clients());
  if (participants == 0 || participants >= sim.num_clients()) {
    throw std::runtime_error("fleet smoke: churn_heavy participation out of range");
  }
}

// Buffered-async smoke at N=1000 under longtail_mobile, also run under
// --smoke so tier-1 CI drives the event-driven engine end to end on a real
// Simulation: timeline build + seal, first-M flush, deferred uploads
// carrying staleness into later rounds, event-triggered uploads armed.
// Throws when the async bookkeeping breaks.
void async_smoke() {
  std::printf("\n== buffered-async smoke: 3 longtail_mobile rounds at N=1000, M=40 ==\n");
  data::SyntheticConfig dc;
  dc.num_classes = 4;
  dc.channels = 1;
  dc.height = 4;
  dc.width = 4;
  dc.num_clients = 1000;
  dc.samples_per_client = 2;
  dc.test_samples = 32;
  dc.seed = 13;
  fl::SimulationConfig cfg;
  cfg.batch = 2;
  cfg.max_rounds = 3;
  cfg.eval_every = 10;  // no mid-run evals; the final backfill still runs
  cfg.eval_samples_per_client = 1;
  cfg.eval_test_samples = 16;
  cfg.participation = 0.1;  // 100 sampled per round, buffer flushes at 40
  cfg.seed = 13;
  cfg.threads = 2;
  fl::apply_scenario(fl::make_scenario("longtail_mobile", dc.num_clients, cfg.seed), cfg);
  cfg.aggregation = fl::AggregationMode::kBufferedAsync;
  cfg.async.buffer_size = 40;
  cfg.async.staleness_lambda = 0.25;
  cfg.async.trigger_scale = 4.0;  // arm event-triggered uploads too
  auto dataset = data::make_synthetic(dc);
  auto factory = nn::mlp(16, {12}, 4);
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  fl::Simulation sim(cfg, std::move(dataset), factory, sparsify::make_method("fab_topk", dim, 5),
                     std::make_unique<online::FixedK>(20.0));
  const fl::SimulationResult res = sim.run();
  if (res.records.size() != 3) {
    throw std::runtime_error("async smoke: expected 3 round records");
  }
  // Round 1: nothing buffered yet, so the flush is exactly the first M
  // arrivals. Later rounds fold catch-ups on top.
  if (res.records.front().participants != cfg.async.buffer_size) {
    throw std::runtime_error("async smoke: first flush is not the first-M arrivals");
  }
  bool saw_staleness = false;
  for (const auto& r : res.records) {
    if (r.participants < cfg.async.buffer_size) {
      throw std::runtime_error("async smoke: flush smaller than the accept buffer");
    }
    if (!(r.mean_staleness >= 0.0)) {
      throw std::runtime_error("async smoke: mean staleness not finite");
    }
    saw_staleness = saw_staleness || r.mean_staleness > 0.0;
  }
  if (!saw_staleness) {
    throw std::runtime_error("async smoke: deferred uploads never carried staleness");
  }
  if (sim.pending_uploads() != res.records.back().buffered_stale) {
    throw std::runtime_error("async smoke: pending-upload count diverged from the round record");
  }
  std::printf("async smoke: flushes %zu/%zu/%zu, final buffered uploads %zu\n",
              res.records[0].participants, res.records[1].participants,
              res.records[2].participants, sim.pending_uploads());
}

// Graceful-degradation smoke, run under --smoke so tier-1 CI gates it: FAB
// under the adaptive controller at 20% upload drops + 5% payload corruption
// (the acceptance regime) must complete with finite loss and weights while
// the screening stage visibly does its job — faults observed, poisoned
// payloads rejected, nothing non-finite reaching the model.
void faulty_smoke() {
  std::printf("\n== fault smoke: 12 FAB rounds at 20%% drop / 5%% corruption ==\n");
  data::SyntheticConfig dc;
  dc.num_classes = 4;
  dc.channels = 1;
  dc.height = 4;
  dc.width = 4;
  dc.num_clients = 50;
  dc.samples_per_client = 4;
  dc.test_samples = 32;
  dc.seed = 17;
  fl::SimulationConfig cfg;
  cfg.batch = 2;
  cfg.max_rounds = 12;
  cfg.eval_every = 10;
  cfg.eval_samples_per_client = 1;
  cfg.eval_test_samples = 16;
  cfg.seed = 17;
  cfg.threads = 2;
  cfg.faults.drop_prob = 0.2;
  cfg.faults.corrupt_prob = 0.05;
  cfg.validation.enabled = true;
  auto dataset = data::make_synthetic(dc);
  auto factory = nn::mlp(16, {12}, 4);
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  auto controller = std::make_unique<online::ExtendedSignOgd>(
      online::ExtendedSignOgd::Config{2.0, static_cast<double>(dim), 0.0, 1.5, 10});
  fl::Simulation sim(cfg, std::move(dataset), factory, sparsify::make_method("fab_topk", dim, 5),
                     std::move(controller));
  const fl::SimulationResult res = sim.run();
  if (res.rounds_run != 12 || !std::isfinite(res.final_loss)) {
    throw std::runtime_error("fault smoke: run did not complete with finite loss");
  }
  for (const float w : sim.client_weights(0)) {
    if (!std::isfinite(w)) throw std::runtime_error("fault smoke: non-finite global weight");
  }
  std::size_t dropped = 0, corrupted = 0, rejected = 0;
  for (const auto& r : res.records) {
    dropped += r.dropped;
    corrupted += r.corrupted;
    rejected += r.rejected;
  }
  if (dropped == 0 || corrupted == 0) {
    throw std::runtime_error("fault smoke: fault injection never fired");
  }
  if (rejected == 0) {
    throw std::runtime_error("fault smoke: corrupted payloads were never rejected");
  }
  std::printf("fault smoke: dropped %zu, corrupted %zu, rejected %zu, final loss %.3f\n",
              dropped, corrupted, rejected, res.final_loss);
}

// Byzantine smoke, run under --smoke so tier-1 CI gates the robust
// aggregation stage end to end: FAB under the byzantine_mix scenario (20%
// colluding sign-flip cohort over long-tail links, trimmed-mean defense) must
// complete with finite loss and weights while the attack visibly fires (tamper
// events logged) and the robust stage visibly reacts (trust dips below 1 on at
// least one round). Throws on any of those failing.
void byzantine_smoke() {
  std::printf("\n== byzantine smoke: 12 FAB rounds under byzantine_mix ==\n");
  data::SyntheticConfig dc;
  dc.num_classes = 4;
  dc.channels = 1;
  dc.height = 4;
  dc.width = 4;
  dc.num_clients = 50;
  dc.samples_per_client = 4;
  dc.test_samples = 32;
  dc.seed = 19;
  fl::SimulationConfig cfg;
  cfg.batch = 2;
  cfg.max_rounds = 12;
  cfg.eval_every = 10;
  cfg.eval_samples_per_client = 1;
  cfg.eval_test_samples = 16;
  cfg.seed = 19;
  cfg.threads = 2;
  fl::apply_scenario(fl::make_scenario("byzantine_mix", dc.num_clients, cfg.seed), cfg);
  auto dataset = data::make_synthetic(dc);
  auto factory = nn::mlp(16, {12}, 4);
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  fl::Simulation sim(cfg, std::move(dataset), factory, sparsify::make_method("fab_topk", dim, 5),
                     std::make_unique<online::FixedK>(20.0));
  const fl::SimulationResult res = sim.run();
  if (res.rounds_run != 12 || !std::isfinite(res.final_loss)) {
    throw std::runtime_error("byzantine smoke: run did not complete with finite loss");
  }
  for (const float w : sim.client_weights(0)) {
    if (!std::isfinite(w)) throw std::runtime_error("byzantine smoke: non-finite global weight");
  }
  std::size_t byzantine = 0;
  double min_trust = 1.0;
  for (const auto& r : res.records) {
    byzantine += r.byzantine;
    min_trust = std::min(min_trust, r.trust);
  }
  if (byzantine == 0) {
    throw std::runtime_error("byzantine smoke: adversarial tampering never fired");
  }
  if (!(min_trust < 1.0)) {
    throw std::runtime_error("byzantine smoke: robust stage never flagged the cohort");
  }
  std::printf("byzantine smoke: %zu tampered uploads, min round trust %.3f, final loss %.3f\n",
              byzantine, min_trust, res.final_loss);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fedsparse;
  try {
    util::Flags flags(argc, argv);
    bench::CommonArgs a = bench::parse_common(flags);
    const bool smoke = flags.get_bool("smoke", false, "2 rounds per scenario (CI plumbing run)");
    const double target = flags.get_double("target_loss", 1.2, "stop when global loss reaches");
    flags.check_unknown();
    const long rounds = smoke ? 2 : a.rounds;
    const double target_loss = smoke ? 0.0 : target;

    bench::banner("scenario_sweep", "adaptive k across heterogeneous network scenarios");

    util::CsvWriter summary(a.out_dir + "/scenario_sweep/summary.csv",
                            /*echo_stdout=*/true, "scenario_sweep/summary");
    summary.header({"scenario", "rounds", "total_cost", "final_loss", "final_accuracy",
                    "tail_k_mean", "modal_straggler", "straggler_rounds", "offline_rounds"});

    std::map<std::string, ScenarioRun> runs;
    for (const std::string& name : fl::scenario_names()) {
      std::printf("\n== scenario %s ==\n", name.c_str());
      ScenarioRun run = run_scenario(a, name, rounds, target_loss);
      const auto [modal_straggler, straggler_rounds] = run.result.modal_straggler();
      summary.row_text({name, std::to_string(run.result.rounds_run),
                        util::CsvWriter::format(run.result.total_time),
                        util::CsvWriter::format(run.result.final_loss),
                        util::CsvWriter::format(run.result.final_accuracy),
                        util::CsvWriter::format(run.result.tail_k_mean()),
                        std::to_string(modal_straggler),
                        std::to_string(straggler_rounds),
                        std::to_string(run.offline_rounds)});
      bench::emit_curves(a.out_dir, "scenario_sweep", name, run.result);
      bench::emit_k_trace(a.out_dir, "scenario_sweep", name, run.result);
      emit_traffic(a.out_dir, name, run.result);
      runs.emplace(name, std::move(run));
    }

    if (smoke) {
      fleet_smoke();
      async_smoke();
      faulty_smoke();
      byzantine_smoke();
    }

    if (!smoke) {
      // The acceptance comparison: equal-loss runs, bimodal should settle on
      // a smaller k than uniform because its slow quarter makes every
      // transmitted value dearer.
      const ScenarioRun& uniform = runs.at("uniform");
      const ScenarioRun& bimodal = runs.at("bimodal");
      std::printf("\nuniform:  tail k = %.1f  (loss %.4f in %zu rounds, cost %.1f)\n",
                  uniform.result.tail_k_mean(), uniform.result.final_loss,
                  uniform.result.rounds_run, uniform.result.total_time);
      std::printf("bimodal:  tail k = %.1f  (loss %.4f in %zu rounds, cost %.1f)\n",
                  bimodal.result.tail_k_mean(), bimodal.result.final_loss,
                  bimodal.result.rounds_run, bimodal.result.total_time);
      std::printf(bimodal.result.tail_k_mean() < uniform.result.tail_k_mean()
                      ? "=> controller shrank k under bimodal stragglers, as expected\n"
                      : "=> WARNING: bimodal k did not settle below uniform k\n");
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
