// Scenario sweep: the adaptive controller (Algorithm 3) across the named
// network/device scenarios of fl/network.h — uniform, bimodal fast/slow,
// long-tail mobile, metered WAN.
//
// For every scenario the harness runs the same federated task to a common
// target loss and reports: composite cost at the target, rounds, the k the
// controller settled on (tail mean), the straggler that bound the most
// rounds, and how many rounds lost clients to churn. The headline claim this
// pins (see docs/architecture.md): under bimodal fast/slow links the
// controller converges to a *smaller* k than under uniform links at equal
// loss, because the slow quarter's uplink makes every transmitted value
// dearer — exactly the Section V trade-off the paper's online learner is
// supposed to track, now with heterogeneity it was never evaluated under.
//
// Emitted CSV series (echoed to stdout, written under --out_dir):
//   summary.csv               one row per scenario
//   <scenario>_curve.csv      (round, time, global_loss, accuracy, k)
//   <scenario>_k.csv          the adaptive k_m trace
//   <scenario>_traffic.csv    realized per-client bytes + rounds participated
//
//   ./bench/scenario_sweep [--rounds=250] [--target_loss=1.2] [--smoke]
//   --smoke caps every scenario at 2 rounds (the CI tier-1 case: plumbing
//   only, no convergence claims).
#include <cstdio>
#include <map>
#include <string>

#include "common.h"

namespace {

using namespace fedsparse;

struct ScenarioRun {
  fl::SimulationResult result;
  std::size_t offline_rounds = 0;  // rounds with at least one client offline
};

ScenarioRun run_scenario(const bench::CommonArgs& a, const std::string& name, long rounds,
                         double target_loss) {
  core::TrainerConfig cfg = bench::base_config(a);
  cfg.method = "fab_topk";
  cfg.scenario = name;
  cfg.controller.name = "extended_sign_ogd";
  cfg.sim.max_rounds = static_cast<std::size_t>(rounds);
  cfg.sim.target_loss = target_loss;

  ScenarioRun run;
  core::FederatedTrainer trainer(cfg);
  run.result = trainer.run();
  for (const auto& r : run.result.records) {
    if (r.participants < trainer.dataset_config().num_clients) ++run.offline_rounds;
  }
  return run;
}

void emit_traffic(const std::string& out_dir, const std::string& name,
                  const fl::SimulationResult& res) {
  util::CsvWriter csv(out_dir + "/scenario_sweep/" + name + "_traffic.csv",
                      /*echo_stdout=*/true, "scenario_sweep/" + name + "_traffic");
  csv.header({"client", "rounds_participated", "uplink_bytes", "downlink_bytes"});
  for (const auto& row : fl::client_traffic_rows(res.client_uplink_values,
                                                 res.client_downlink_values,
                                                 res.client_rounds_participated)) {
    csv.row({static_cast<double>(row.client), static_cast<double>(row.rounds_participated),
             row.uplink_bytes, row.downlink_bytes});
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fedsparse;
  try {
    util::Flags flags(argc, argv);
    bench::CommonArgs a = bench::parse_common(flags);
    const bool smoke = flags.get_bool("smoke", false, "2 rounds per scenario (CI plumbing run)");
    const double target = flags.get_double("target_loss", 1.2, "stop when global loss reaches");
    flags.check_unknown();
    const long rounds = smoke ? 2 : a.rounds;
    const double target_loss = smoke ? 0.0 : target;

    bench::banner("scenario_sweep", "adaptive k across heterogeneous network scenarios");

    util::CsvWriter summary(a.out_dir + "/scenario_sweep/summary.csv",
                            /*echo_stdout=*/true, "scenario_sweep/summary");
    summary.header({"scenario", "rounds", "total_cost", "final_loss", "final_accuracy",
                    "tail_k_mean", "modal_straggler", "straggler_rounds", "offline_rounds"});

    std::map<std::string, ScenarioRun> runs;
    for (const std::string& name : fl::scenario_names()) {
      std::printf("\n== scenario %s ==\n", name.c_str());
      ScenarioRun run = run_scenario(a, name, rounds, target_loss);
      const auto [modal_straggler, straggler_rounds] = run.result.modal_straggler();
      summary.row_text({name, std::to_string(run.result.rounds_run),
                        util::CsvWriter::format(run.result.total_time),
                        util::CsvWriter::format(run.result.final_loss),
                        util::CsvWriter::format(run.result.final_accuracy),
                        util::CsvWriter::format(run.result.tail_k_mean()),
                        std::to_string(modal_straggler),
                        std::to_string(straggler_rounds),
                        std::to_string(run.offline_rounds)});
      bench::emit_curves(a.out_dir, "scenario_sweep", name, run.result);
      bench::emit_k_trace(a.out_dir, "scenario_sweep", name, run.result);
      emit_traffic(a.out_dir, name, run.result);
      runs.emplace(name, std::move(run));
    }

    if (!smoke) {
      // The acceptance comparison: equal-loss runs, bimodal should settle on
      // a smaller k than uniform because its slow quarter makes every
      // transmitted value dearer.
      const ScenarioRun& uniform = runs.at("uniform");
      const ScenarioRun& bimodal = runs.at("bimodal");
      std::printf("\nuniform:  tail k = %.1f  (loss %.4f in %zu rounds, cost %.1f)\n",
                  uniform.result.tail_k_mean(), uniform.result.final_loss,
                  uniform.result.rounds_run, uniform.result.total_time);
      std::printf("bimodal:  tail k = %.1f  (loss %.4f in %zu rounds, cost %.1f)\n",
                  bimodal.result.tail_k_mean(), bimodal.result.final_loss,
                  bimodal.result.rounds_run, bimodal.result.total_time);
      std::printf(bimodal.result.tail_k_mean() < uniform.result.tail_k_mean()
                      ? "=> controller shrank k under bimodal stragglers, as expected\n"
                      : "=> WARNING: bimodal k did not settle below uniform k\n");
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
