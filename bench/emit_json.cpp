// Emits BENCH_micro.json: before/after timings of every kernel this repo's
// per-round hot path runs — top-k selection (seed heap vs quickselect), GEMM
// (seed scalar triple loop vs blocked 4x-unrolled kernel), accumulator adds,
// and the FAB-top-k server round. Self-contained (std::chrono, no google
// benchmark) so CI can produce the JSON artifact on any box.
//
// Usage: emit_json [output_path] [--quick]
//   output_path defaults to BENCH_micro.json in the current directory.
//   --quick shrinks the measurement budget (CI smoke).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "sparsify/accumulator.h"
#include "sparsify/fab_topk.h"
#include "sparsify/method.h"
#include "sparsify/topk.h"
#include "tensor/matrix.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace fedsparse;
using Clock = std::chrono::steady_clock;

double g_budget_seconds = 0.5;  // per kernel; --quick shrinks it

template <typename T>
inline void do_not_optimize(const T& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

struct KernelResult {
  std::string name;
  std::string baseline;  // empty when this kernel IS a baseline
  double ns_per_op = 0.0;
  double items_per_s = 0.0;
  std::size_t iterations = 0;
};

/// Runs fn repeatedly until the time budget is spent (at least 3 iterations)
/// and reports mean ns/op. `items` is the per-op work amount for items/s.
KernelResult measure(const std::string& name, const std::string& baseline, double items,
                     const std::function<void()>& fn) {
  fn();  // warmup (also warms scratch-buffer capacities)
  std::size_t iters = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  do {
    fn();
    ++iters;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < g_budget_seconds || iters < 3);
  KernelResult r;
  r.name = name;
  r.baseline = baseline;
  r.iterations = iters;
  r.ns_per_op = elapsed * 1e9 / static_cast<double>(iters);
  r.items_per_s = items * static_cast<double>(iters) / elapsed;
  std::printf("  %-28s %12.0f ns/op  %10.3e items/s  (%zu iters)\n", name.c_str(), r.ns_per_op,
              r.items_per_s, iters);
  return r;
}

std::vector<float> random_vec(std::size_t d, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(d);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

void bench_topk(std::vector<KernelResult>& out) {
  const std::size_t d = 1u << 20;  // 1M — the acceptance-criteria point
  const std::size_t k = 1000;
  const auto v = random_vec(d, 1);
  const std::span<const float> vs{v.data(), v.size()};
  out.push_back(measure("topk_heap_D1M_k1000", "", static_cast<double>(d), [&] {
    do_not_optimize(sparsify::top_k_entries_heap(vs, k));
  }));
  sparsify::TopKWorkspace ws;
  sparsify::SparseVector result;
  out.push_back(measure("topk_quickselect_D1M_k1000", "topk_heap_D1M_k1000",
                        static_cast<double>(d), [&] {
                          sparsify::top_k_entries(vs, k, ws, result);
                          do_not_optimize(result);
                        }));
}

void bench_gemm(std::vector<KernelResult>& out) {
  const std::size_t n = 256;  // MLP-layer scale used by nn/models
  tensor::Matrix a(n, n), b(n, n), c(n, n);
  util::Rng rng(7);
  for (auto& x : a.flat()) x = static_cast<float>(rng.normal());
  for (auto& x : b.flat()) x = static_cast<float>(rng.normal());
  const double flops = 2.0 * static_cast<double>(n) * n * n;
  out.push_back(measure("gemm_reference_256", "", flops, [&] {
    tensor::zero(c.flat());
    tensor::detail::gemm_nn_reference(a, b, 1.0f, c);
    do_not_optimize(c);
  }));
  out.push_back(measure("gemm_blocked_256", "gemm_reference_256", flops, [&] {
    tensor::gemm(a, false, b, false, 1.0f, 0.0f, c);
    do_not_optimize(c);
  }));
}

void bench_accumulator(std::vector<KernelResult>& out) {
  const std::size_t d = 1u << 20;
  sparsify::GradientAccumulator acc(d);
  const auto g = random_vec(d, 3);
  out.push_back(measure("accumulator_add_D1M", "", static_cast<double>(d), [&] {
    acc.add({g.data(), g.size()});
    do_not_optimize(acc.value().data());
  }));
}

void bench_fab_round(std::vector<KernelResult>& out) {
  const std::size_t n = 10, d = 1u << 17;
  const std::size_t k = d / 100 + 1;
  std::vector<std::vector<float>> vecs;
  for (std::size_t i = 0; i < n; ++i) vecs.push_back(random_vec(d, i + 1));
  std::vector<double> weights(n, 1.0 / static_cast<double>(n));
  sparsify::RoundInput in;
  in.dim = d;
  in.round = 1;
  in.data_weights = {weights.data(), weights.size()};
  for (const auto& v : vecs) in.client_vectors.push_back({v.data(), v.size()});
  sparsify::FabTopK method(d);
  out.push_back(measure("fab_server_round_N10_D128k", "", static_cast<double>(n * d), [&] {
    do_not_optimize(method.round(in, k));
  }));
}

void bench_parallel_for(std::vector<KernelResult>& out) {
  util::ThreadPool pool;
  const std::size_t n = 1u << 20;
  std::vector<float> x(n, 1.0f);
  out.push_back(measure("parallel_for_chunked_1M", "", static_cast<double>(n), [&] {
    pool.parallel_for(n, [&](std::size_t i) { x[i] *= 1.0000001f; });
    do_not_optimize(x.data());
  }));
}

double find_ns(const std::vector<KernelResult>& rs, const std::string& name) {
  for (const auto& r : rs) {
    if (r.name == name) return r.ns_per_op;
  }
  return 0.0;
}

void write_json(const std::vector<KernelResult>& rs, const std::string& path) {
  std::ofstream f(path);
  f << "{\n  \"schema\": 1,\n  \"kernels\": [\n";
  for (std::size_t i = 0; i < rs.size(); ++i) {
    const auto& r = rs[i];
    f << "    {\"name\": \"" << r.name << "\", \"ns_per_op\": " << r.ns_per_op
      << ", \"items_per_s\": " << r.items_per_s << ", \"iterations\": " << r.iterations;
    if (!r.baseline.empty()) {
      const double base = find_ns(rs, r.baseline);
      f << ", \"baseline\": \"" << r.baseline
        << "\", \"speedup_vs_baseline\": " << (r.ns_per_op > 0.0 ? base / r.ns_per_op : 0.0);
    }
    f << "}" << (i + 1 < rs.size() ? "," : "") << "\n";
  }
  f << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string path = "BENCH_micro.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      g_budget_seconds = 0.05;
    } else {
      path = argv[i];
    }
  }
  std::printf("fedsparse kernel microbenchmarks (budget %.2fs/kernel)\n", g_budget_seconds);
  std::vector<KernelResult> results;
  bench_topk(results);
  bench_gemm(results);
  bench_accumulator(results);
  bench_fab_round(results);
  bench_parallel_for(results);
  write_json(results, path);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
