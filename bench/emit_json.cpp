// Emits BENCH_micro.json: before/after timings of every kernel this repo's
// per-round hot path runs — top-k selection (seed heap vs quickselect), GEMM
// (seed scalar triple loop vs blocked 4x-unrolled kernel), Linear and Conv2d
// forward+backward (seed scalar loops vs the GEMM-routed layers), accumulator
// adds, and the FAB-top-k server round. Self-contained (std::chrono, no
// google benchmark) so CI can produce the JSON artifact on any box.
//
// Usage: emit_json [output_path] [--quick]
//   output_path defaults to BENCH_micro.json in the current directory.
//   --quick shrinks the measurement budget (CI smoke).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define FEDSPARSE_HAVE_RUSAGE 1
#endif

#include "data/synthetic.h"
#include "fl/simulation.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/models.h"
#include "online/controller.h"
#include "sparsify/accumulator.h"
#include "sparsify/fab_topk.h"
#include "sparsify/method.h"
#include "sparsify/sparse_vector.h"
#include "sparsify/topk.h"
#include "tensor/im2col.h"
#include "tensor/matrix.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace fedsparse;
using Clock = std::chrono::steady_clock;

double g_budget_seconds = 0.5;  // per kernel; --quick shrinks it

template <typename T>
inline void do_not_optimize(const T& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

struct KernelResult {
  std::string name;
  std::string baseline;  // empty when this kernel IS a baseline
  double ns_per_op = 0.0;
  double items_per_s = 0.0;
  std::size_t iterations = 0;
  double peak_rss_mb = 0.0;  // process peak RSS after this kernel (0 = untracked)
};

/// Process peak resident set size in MB (0 when the platform lacks rusage).
/// Monotone over the process lifetime, so sweeps that care about it order
/// their cheap configurations first.
double peak_rss_mb() {
#if FEDSPARSE_HAVE_RUSAGE
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
#if defined(__APPLE__)
  return static_cast<double>(ru.ru_maxrss) / (1024.0 * 1024.0);  // macOS: bytes
#else
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux: KB
#endif
#else
  return 0.0;
#endif
}

/// Runs fn repeatedly until the time budget is spent (at least 3 iterations)
/// and reports mean ns/op. `items` is the per-op work amount for items/s.
KernelResult measure(const std::string& name, const std::string& baseline, double items,
                     const std::function<void()>& fn) {
  fn();  // warmup (also warms scratch-buffer capacities)
  std::size_t iters = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  do {
    fn();
    ++iters;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < g_budget_seconds || iters < 3);
  KernelResult r;
  r.name = name;
  r.baseline = baseline;
  r.iterations = iters;
  r.ns_per_op = elapsed * 1e9 / static_cast<double>(iters);
  r.items_per_s = items * static_cast<double>(iters) / elapsed;
  std::printf("  %-28s %12.0f ns/op  %10.3e items/s  (%zu iters)\n", name.c_str(), r.ns_per_op,
              r.items_per_s, iters);
  return r;
}

std::vector<float> random_vec(std::size_t d, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(d);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

void bench_topk(std::vector<KernelResult>& out) {
  const std::size_t d = 1u << 20;  // 1M — the acceptance-criteria point
  const std::size_t k = 1000;
  const auto v = random_vec(d, 1);
  const std::span<const float> vs{v.data(), v.size()};
  out.push_back(measure("topk_heap_D1M_k1000", "", static_cast<double>(d), [&] {
    do_not_optimize(sparsify::top_k_entries_heap(vs, k));
  }));
  sparsify::TopKWorkspace ws;
  sparsify::SparseVector result;
  out.push_back(measure("topk_quickselect_D1M_k1000", "topk_heap_D1M_k1000",
                        static_cast<double>(d), [&] {
                          sparsify::top_k_entries(vs, k, ws, result);
                          do_not_optimize(result);
                        }));
}

void bench_gemm(std::vector<KernelResult>& out) {
  const std::size_t n = 256;  // MLP-layer scale used by nn/models
  tensor::Matrix a(n, n), b(n, n), c(n, n);
  util::Rng rng(7);
  for (auto& x : a.flat()) x = static_cast<float>(rng.normal());
  for (auto& x : b.flat()) x = static_cast<float>(rng.normal());
  const double flops = 2.0 * static_cast<double>(n) * n * n;
  out.push_back(measure("gemm_reference_256", "", flops, [&] {
    tensor::zero(c.flat());
    tensor::detail::gemm_nn_reference(a, b, 1.0f, c);
    do_not_optimize(c);
  }));
  out.push_back(measure("gemm_blocked_256", "gemm_reference_256", flops, [&] {
    tensor::gemm(a, false, b, false, 1.0f, 0.0f, c);
    do_not_optimize(c);
  }));

  // A·Bᵀ at the same scale: the packed-transpose path (B repacked once, then
  // the 4x16 nn micro-kernel) against a scalar rows-dot-rows reference.
  out.push_back(measure("gemm_nt_reference_256", "", flops, [&] {
    for (std::size_t mi = 0; mi < n; ++mi) {
      const float* arow = a.row(mi);
      float* crow = c.row(mi);
      for (std::size_t ni = 0; ni < n; ++ni) {
        const float* brow = b.row(ni);
        float acc = 0.0f;
        for (std::size_t ki = 0; ki < n; ++ki) acc += arow[ki] * brow[ki];
        crow[ni] = acc;
      }
    }
    do_not_optimize(c);
  }));
  out.push_back(measure("gemm_nt_packed_256", "gemm_nt_reference_256", flops, [&] {
    tensor::zero(c.flat());
    tensor::gemm_nt(a, b, 1.0f, c);
    do_not_optimize(c);
  }));
}

// --- layer forward+backward: seed scalar loops vs the GEMM-routed layers ---
//
// The "before" side replicates the seed Linear/Conv2d triple loops verbatim
// (per-row dot products, per-channel column sweeps); the "after" side runs
// the live layers, which now route through gemm_nt / gemm_tn / gemm_nn.
// Shapes are the acceptance-criteria points: batch 32, 784->128 linear and a
// 1x28x28 -> 8ch k=5 conv.

void linear_fwd_bwd_scalar(const tensor::Matrix& x, const tensor::Matrix& dy,
                           std::span<const float> w, std::span<const float> b,
                           std::span<float> gw, std::span<float> gb, tensor::Matrix& y,
                           tensor::Matrix& dx, std::size_t in, std::size_t out_f) {
  const std::size_t batch = x.rows();
  y.reshape(batch, out_f);
  for (std::size_t r = 0; r < batch; ++r) {
    const float* xr = x.row(r);
    float* yr = y.row(r);
    for (std::size_t o = 0; o < out_f; ++o) {
      const float* wr = w.data() + o * in;
      float acc = b[o];
      for (std::size_t i = 0; i < in; ++i) acc += xr[i] * wr[i];
      yr[o] = acc;
    }
  }
  for (std::size_t r = 0; r < batch; ++r) {
    const float* dyr = dy.row(r);
    const float* xr = x.row(r);
    for (std::size_t o = 0; o < out_f; ++o) {
      const float d = dyr[o];
      if (d == 0.0f) continue;
      float* gwr = gw.data() + o * in;
      for (std::size_t i = 0; i < in; ++i) gwr[i] += d * xr[i];
      gb[o] += d;
    }
  }
  dx.reshape(batch, in);
  for (std::size_t r = 0; r < batch; ++r) {
    const float* dyr = dy.row(r);
    float* dxr = dx.row(r);
    for (std::size_t i = 0; i < in; ++i) dxr[i] = 0.0f;
    for (std::size_t o = 0; o < out_f; ++o) {
      const float d = dyr[o];
      if (d == 0.0f) continue;
      const float* wr = w.data() + o * in;
      for (std::size_t i = 0; i < in; ++i) dxr[i] += d * wr[i];
    }
  }
}

void bench_linear(std::vector<KernelResult>& out) {
  const std::size_t batch = 32, in = 784, out_f = 128;
  util::Rng rng(11);
  nn::Linear layer(in, out_f);
  std::vector<float> weights(layer.param_count()), grads(layer.param_count(), 0.0f);
  layer.bind({weights.data(), weights.size()}, {grads.data(), grads.size()});
  layer.init_params(rng);
  tensor::Matrix x(batch, in), dy(batch, out_f), y, dx;
  for (auto& v : x.flat()) v = static_cast<float>(rng.normal());
  for (auto& v : dy.flat()) v = static_cast<float>(rng.normal());
  // fwd (batch*in*out) + bwd dW (same) + bwd dx (same) multiply-adds.
  const double flops = 3.0 * 2.0 * static_cast<double>(batch) * in * out_f;
  const std::span<float> gw{grads.data(), in * out_f};
  const std::span<float> gb{grads.data() + in * out_f, out_f};
  out.push_back(measure("linear_fwd_bwd_scalar", "", flops, [&] {
    std::fill(grads.begin(), grads.end(), 0.0f);
    linear_fwd_bwd_scalar(x, dy, {weights.data(), in * out_f},
                          {weights.data() + in * out_f, out_f}, gw, gb, y, dx, in, out_f);
    do_not_optimize(dx);
  }));
  out.push_back(measure("linear_fwd_bwd", "linear_fwd_bwd_scalar", flops, [&] {
    std::fill(grads.begin(), grads.end(), 0.0f);
    layer.forward(x, y);
    layer.backward(dy, dx);
    do_not_optimize(dx);
  }));
}

void conv2d_fwd_bwd_scalar(const tensor::Matrix& x, const tensor::Matrix& dy,
                           const tensor::ConvGeometry& g, std::size_t out_ch,
                           std::span<const float> w, std::span<const float> b,
                           std::span<float> gw, std::span<float> gb, tensor::Matrix& y,
                           tensor::Matrix& dx, tensor::Matrix& cols, tensor::Matrix& dcols) {
  const std::size_t batch = x.rows();
  const std::size_t spatial = g.col_cols(), ckk = g.col_rows();
  y.reshape(batch, out_ch * spatial);
  for (std::size_t s = 0; s < batch; ++s) {
    tensor::im2col(x.row(s), g, cols);
    float* ys = y.row(s);
    for (std::size_t o = 0; o < out_ch; ++o) {
      const float* wr = w.data() + o * ckk;
      float* yrow = ys + o * spatial;
      for (std::size_t p = 0; p < spatial; ++p) yrow[p] = b[o];
      for (std::size_t r = 0; r < ckk; ++r) {
        const float wv = wr[r];
        if (wv == 0.0f) continue;
        const float* crow = cols.row(r);
        for (std::size_t p = 0; p < spatial; ++p) yrow[p] += wv * crow[p];
      }
    }
  }
  dx.reshape(batch, g.image_size());
  tensor::zero(dx.flat());
  for (std::size_t s = 0; s < batch; ++s) {
    tensor::im2col(x.row(s), g, cols);
    const float* dys = dy.row(s);
    for (std::size_t o = 0; o < out_ch; ++o) {
      const float* dyrow = dys + o * spatial;
      float* gwr = gw.data() + o * ckk;
      double bsum = 0.0;
      for (std::size_t p = 0; p < spatial; ++p) bsum += dyrow[p];
      gb[o] += static_cast<float>(bsum);
      for (std::size_t r = 0; r < ckk; ++r) {
        const float* crow = cols.row(r);
        float acc = 0.0f;
        for (std::size_t p = 0; p < spatial; ++p) acc += dyrow[p] * crow[p];
        gwr[r] += acc;
      }
    }
    dcols.reshape(ckk, spatial);
    tensor::zero(dcols.flat());
    for (std::size_t o = 0; o < out_ch; ++o) {
      const float* dyrow = dys + o * spatial;
      const float* wr = w.data() + o * ckk;
      for (std::size_t r = 0; r < ckk; ++r) {
        const float wv = wr[r];
        if (wv == 0.0f) continue;
        float* drow = dcols.row(r);
        for (std::size_t p = 0; p < spatial; ++p) drow[p] += wv * dyrow[p];
      }
    }
    tensor::col2im(dcols, g, dx.row(s));
  }
}

void bench_conv2d(std::vector<KernelResult>& out) {
  const std::size_t batch = 32, ch = 1, h = 28, wdt = 28, out_ch = 8, ks = 5;
  util::Rng rng(13);
  nn::Conv2d layer(ch, h, wdt, out_ch, ks);
  std::vector<float> weights(layer.param_count()), grads(layer.param_count(), 0.0f);
  layer.bind({weights.data(), weights.size()}, {grads.data(), grads.size()});
  layer.init_params(rng);
  const tensor::ConvGeometry& g = layer.geometry();
  const std::size_t spatial = g.col_cols(), ckk = g.col_rows();
  tensor::Matrix x(batch, ch * h * wdt), dy(batch, out_ch * spatial), y, dx, cols, dcols;
  for (auto& v : x.flat()) v = static_cast<float>(rng.normal());
  for (auto& v : dy.flat()) v = static_cast<float>(rng.normal());
  // fwd + bwd dW + bwd dcols GEMM-equivalent multiply-adds per sample.
  const double flops = 3.0 * 2.0 * static_cast<double>(batch) * out_ch * ckk * spatial;
  const std::span<float> gw{grads.data(), out_ch * ckk};
  const std::span<float> gb{grads.data() + out_ch * ckk, out_ch};
  out.push_back(measure("conv2d_fwd_bwd_scalar", "", flops, [&] {
    std::fill(grads.begin(), grads.end(), 0.0f);
    conv2d_fwd_bwd_scalar(x, dy, g, out_ch, {weights.data(), out_ch * ckk},
                          {weights.data() + out_ch * ckk, out_ch}, gw, gb, y, dx, cols, dcols);
    do_not_optimize(dx);
  }));
  out.push_back(measure("conv2d_fwd_bwd", "conv2d_fwd_bwd_scalar", flops, [&] {
    std::fill(grads.begin(), grads.end(), 0.0f);
    layer.forward(x, y);
    layer.backward(dy, dx);
    do_not_optimize(dx);
  }));
}

void bench_accumulator(std::vector<KernelResult>& out) {
  const std::size_t d = 1u << 20;
  sparsify::GradientAccumulator acc(d);
  const auto g = random_vec(d, 3);
  out.push_back(measure("accumulator_add_D1M", "", static_cast<double>(d), [&] {
    acc.add({g.data(), g.size()});
    do_not_optimize(acc.value().data());
  }));
  // Mostly-zero source (the post-reset / sparse-task gradient shape): the
  // 8-lane add skips all-zero source groups without touching the
  // destination, so this runs at read-only speed over g.
  sparsify::GradientAccumulator sparse_acc(d);
  auto gs = random_vec(d, 5);
  for (std::size_t i = 0; i < d; ++i) {
    if ((i / sparsify::kAccumulatorChunk) % 100 != 0) gs[i] = 0.0f;
  }
  out.push_back(measure("accumulator_add_sparse1_D1M", "", static_cast<double>(d), [&] {
    sparse_acc.add({gs.data(), gs.size()});
    do_not_optimize(sparse_acc.value().data());
  }));
}

void bench_fab_round(std::vector<KernelResult>& out) {
  const std::size_t n = 10, d = 1u << 17;
  const std::size_t k = d / 100 + 1;
  std::vector<std::vector<float>> vecs;
  for (std::size_t i = 0; i < n; ++i) vecs.push_back(random_vec(d, i + 1));
  std::vector<double> weights(n, 1.0 / static_cast<double>(n));
  sparsify::RoundInput in;
  in.dim = d;
  in.round = 1;
  in.data_weights = {weights.data(), weights.size()};
  for (const auto& v : vecs) in.client_vectors.push_back({v.data(), v.size()});
  sparsify::FabTopK method(d);
  out.push_back(measure("fab_server_round_N10_D128k", "", static_cast<double>(n * d), [&] {
    do_not_optimize(method.round(in, k));
  }));
}

// --- shared-replica round engine: server round + apply-path scaling ---------
//
// The synchronized methods hold one global weight vector, so the broadcast
// update is applied ONCE in O(k); the per-replica reference engine applies
// the identical update to n separate vectors. The sweep pins the claim that
// round time stops scaling with n on the apply path (speedup vs per-replica
// ~ n, which is machine-portable and CI-gateable), and the printed peak-RSS
// trail shows the per-replica side paying O(n·D) weight memory the shared
// store never allocates.

void bench_round_engine(std::vector<KernelResult>& out) {
  const std::size_t d = 1u << 17;   // 128k
  const std::size_t k = d / 100 + 1;
  const float lr = 0.05f;

  // Apply-path scaling sweep, N ∈ {10, 100, 1000}. ru_maxrss is monotone
  // over the process lifetime, so the sweep runs before the ~52 MB
  // server_round block below, ALL shared points run before ANY per-replica
  // point (shared readings never include a freed reference-engine
  // allocation), and the per-replica points run in ascending n (each point's
  // peak is dominated by its own replicas).
  sparsify::SparseVector update;
  update.reserve(k);
  util::Rng urng(99);
  const std::size_t stride = d / k;
  for (std::size_t j = 0; j < k; ++j) {
    update.push_back(sparsify::SparseEntry{static_cast<std::int32_t>(j * stride),
                                           static_cast<float>(urng.normal())});
  }
  const std::size_t sweep[] = {10, 100, 1000};
  for (const std::size_t n : sweep) {
    const std::string shared_name = "round_apply_shared_N" + std::to_string(n) + "_D128k";
    auto w = random_vec(d, 301);
    const std::span<float> ws{w.data(), w.size()};
    out.push_back(measure(shared_name,
                          "round_apply_perreplica_N" + std::to_string(n) + "_D128k",
                          static_cast<double>(k), [&] {
                            sparsify::axpy_sparse(-lr, update, ws);
                            do_not_optimize(w.data());
                          }));
    out.back().peak_rss_mb = peak_rss_mb();
    std::printf("    peak RSS after %-34s %8.1f MB\n", shared_name.c_str(), peak_rss_mb());
  }
  for (const std::size_t n : sweep) {
    const std::string replica_name = "round_apply_perreplica_N" + std::to_string(n) + "_D128k";
    std::vector<std::vector<float>> replicas;
    replicas.reserve(n);
    for (std::size_t i = 0; i < n; ++i) replicas.push_back(random_vec(d, 400 + i));
    out.push_back(measure(replica_name, "", static_cast<double>(n * k), [&] {
      for (auto& r : replicas) sparsify::axpy_sparse(-lr, update, {r.data(), r.size()});
      do_not_optimize(replicas.data());
    }));
    out.back().peak_rss_mb = peak_rss_mb();
    std::printf("    peak RSS after %-34s %8.1f MB\n", replica_name.c_str(), peak_rss_mb());
  }

  // End-to-end server round (selection + aggregation) at N=100 — ten times
  // the client count of fab_server_round_N10_D128k — through the live path:
  // tiered accumulators whose chunk summaries ride along in the RoundInput.
  // Runs after the sweep so its 100 x D client vectors cannot pollute the
  // sweep's RSS trail (its own peak_rss_mb would read the sweep's 500 MB
  // high-water mark, so none is recorded).
  {
    const std::size_t n = 100;
    std::vector<sparsify::GradientAccumulator> accs;
    accs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto grad = random_vec(d, i + 1);
      accs.emplace_back(d);
      accs.back().add({grad.data(), grad.size()});
    }
    std::vector<double> weights(n, 1.0 / static_cast<double>(n));
    sparsify::RoundInput in;
    in.dim = d;
    in.round = 1;
    in.data_weights = {weights.data(), weights.size()};
    for (const auto& acc : accs) {
      in.client_vectors.push_back(acc.value());
      in.client_chunk_max.push_back(acc.chunk_max());
    }
    sparsify::FabTopK method(d);
    out.push_back(measure("server_round_N100_D128k", "", static_cast<double>(n * d), [&] {
      do_not_optimize(method.round(in, k));
    }));
  }
}

// --- chunk-tiered accumulators: N=1000 rounds and the dirty-fraction sweep --
//
// SparsyFed-scale server rounds: selection + aggregation over 1000 clients.
// Every configuration is measured twice from the same accumulators — the
// tiered path (chunk summaries in the RoundInput, scans prune clean/quiet
// chunks) against a forced-dense run of the same build (summaries withheld)
// — so the gated speedup ratio isolates the traversal change and transfers
// across machines. The dirty-fraction sweep is the churn story: a client
// that sat out rounds has accumulated gradient only in the chunks its last
// few local batches touched, so at 1% dirty the tiered scan reads summaries
// plus ~5 KB instead of the full 512 KB per client. k = 128 for the churn
// points (the small-k regime the adaptive controller settles into under
// churn-heavy scenarios, and small enough that 1%-dirty clients still hold
// >= k nonzeros — selections stay in the hinted-threshold fast path both
// sides). Outcomes are asserted byte-identical between the two runs.

void bench_tiered_rounds(std::vector<KernelResult>& out) {
  const std::size_t d = 1u << 17;  // 128k
  const std::size_t n = 1000;
  struct Config {
    const char* label;
    std::size_t dirty_pct;  // % of chunks holding accumulated gradient
    std::size_t k;
  };
  const Config configs[] = {
      {"server_round_N1000_D128k", 100, d / 100 + 1},
      {"server_round_churn10_N1000_D128k", 10, 128},
      {"server_round_churn1_N1000_D128k", 1, 128},
  };
  std::vector<float> grad(d);
  for (const Config& cfg : configs) {
    // One accumulator set per configuration, freed before the next so peak
    // RSS stays one fleet (~512 MB at N=1000, D=128k).
    std::vector<sparsify::GradientAccumulator> accs;
    accs.reserve(n);
    const std::size_t chunks = sparsify::accumulator_chunks(d);
    const std::size_t dirty = std::max<std::size_t>(1, chunks * cfg.dirty_pct / 100);
    const std::size_t stride = chunks / dirty;
    for (std::size_t i = 0; i < n; ++i) {
      util::Rng rng(1000 + i);
      std::fill(grad.begin(), grad.end(), 0.0f);
      // Evenly spread dirty chunks: client gradients concentrated in a
      // dirty_pct fraction of the coordinate space, zero elsewhere.
      for (std::size_t c = 0; c < dirty; ++c) {
        const std::size_t begin = (c * stride) * sparsify::kAccumulatorChunk;
        const std::size_t end = std::min(d, begin + sparsify::kAccumulatorChunk);
        for (std::size_t j = begin; j < end; ++j) grad[j] = static_cast<float>(rng.normal());
      }
      accs.emplace_back(d);
      accs.back().add({grad.data(), grad.size()});
    }
    std::vector<double> weights(n, 1.0 / static_cast<double>(n));
    sparsify::RoundInput in;
    in.dim = d;
    in.round = 1;
    in.data_weights = {weights.data(), weights.size()};
    for (const auto& acc : accs) in.client_vectors.push_back(acc.value());

    const std::string dense_name = std::string(cfg.label) + "_dense";
    sparsify::FabTopK dense_method(d);
    out.push_back(measure(dense_name, "", static_cast<double>(n * d), [&] {
      do_not_optimize(dense_method.round(in, cfg.k));
    }));

    for (const auto& acc : accs) in.client_chunk_max.push_back(acc.chunk_max());
    sparsify::FabTopK tiered_method(d);
    out.push_back(measure(cfg.label, dense_name, static_cast<double>(n * d), [&] {
      do_not_optimize(tiered_method.round(in, cfg.k));
    }));

    // The tiered traversal must be a pure reordering: same selection, same
    // aggregate, byte for byte.
    const sparsify::RoundOutcome tiered_out = dense_method.round(in, cfg.k);
    in.client_chunk_max.clear();
    const sparsify::RoundOutcome dense_out = dense_method.round(in, cfg.k);
    if (tiered_out.update != dense_out.update ||
        tiered_out.reset_indices != dense_out.reset_indices) {
      std::fprintf(stderr, "FATAL: tiered round diverged from dense on %s\n", cfg.label);
      std::exit(1);
    }
  }
}

// --- sharded mega-fleet rounds ----------------------------------------------
//
// The sharded engine's pitch: per-thread shard fleets with thread-local
// arenas, per-slot workspaces + 8-byte per-client hints (instead of one
// multi-KB workspace per client), and fixed-order tree merges — so server
// rounds scale to N=10^5 participants. Each point measures the sharded path
// (thread pool registered, one shard per slot capped at 16) against the
// single-shard serial reference of the same build, asserts the outcomes
// byte-identical, and records peak RSS — the single-shard side pays the
// per-client workspace knee the fleet layout exists to avoid, which is why
// it runs LAST within each scale (ru_maxrss is monotone).
//
// The absent-client sweep is the participation-sparsity story: at Markov
// stationary π_on, only π_on·N clients appear in a round, and the server's
// cost must track the touched clients, not N. π_on = 0.27 is the
// churn_heavy scenario's stationary point; 0.05 is a SparsyFed-scale
// longtail. Sweep rows also land in BENCH_fleet_sweep.csv for the CI
// artifact. N clients share `distinct` rotating accumulator buffers so the
// fleet costs O(distinct·D) memory instead of O(N·D) — selection/aggregation
// work per client is unchanged (the round path never compares clients).

struct FleetInput {
  std::vector<sparsify::GradientAccumulator> accs;
  std::vector<double> weights;
  std::vector<std::size_t> ids;
  sparsify::RoundInput in;

  FleetInput(std::size_t n, std::size_t d, std::size_t distinct) {
    std::vector<float> grad(d);
    accs.reserve(distinct);
    for (std::size_t i = 0; i < distinct; ++i) {
      util::Rng rng(9000 + i);
      for (auto& x : grad) x = static_cast<float>(rng.normal());
      accs.emplace_back(d);
      accs.back().add({grad.data(), grad.size()});
    }
    weights.assign(n, 1.0 / static_cast<double>(n));
    ids.resize(n);
    for (std::size_t i = 0; i < n; ++i) ids[i] = i;
    in.dim = d;
    in.round = 1;
    in.data_weights = {weights.data(), weights.size()};
    in.client_ids = {ids.data(), ids.size()};
    for (std::size_t i = 0; i < n; ++i) {
      in.client_vectors.push_back(accs[i % distinct].value());
      in.client_chunk_max.push_back(accs[i % distinct].chunk_max());
    }
  }

  /// A participant subset of ceil(pi_on * n) clients, stride-spread over the
  /// id space (Markov-off clients are not clustered), weights renormalized.
  void subset(double pi_on, std::vector<double>& w_scratch, std::vector<std::size_t>& id_scratch,
              sparsify::RoundInput& sub) const {
    const std::size_t n = ids.size();
    const auto m = std::max<std::size_t>(
        1, static_cast<std::size_t>(pi_on * static_cast<double>(n) + 0.5));
    const std::size_t stride = n / m;
    id_scratch.clear();
    for (std::size_t j = 0; j < m; ++j) id_scratch.push_back(j * stride);
    w_scratch.assign(m, 1.0 / static_cast<double>(m));
    sub = sparsify::RoundInput{};
    sub.dim = in.dim;
    sub.round = 1;
    sub.data_weights = {w_scratch.data(), w_scratch.size()};
    sub.client_ids = {id_scratch.data(), id_scratch.size()};
    for (const std::size_t i : id_scratch) {
      sub.client_vectors.push_back(in.client_vectors[i]);
      sub.client_chunk_max.push_back(in.client_chunk_max[i]);
    }
  }
};

struct SweepRow {
  std::string kernel;
  double pi_on;
  std::size_t participants;
  double ns_per_op;
  double peak_rss_mb;
  double uplink_values = 0.0;  // realized fleet uplink of one round
  double uplink_bytes = 0.0;   // fl::values_to_bytes of the same
};

/// Total realized uplink of one round outcome across its participants.
double total_uplink_values(const sparsify::RoundOutcome& o, std::size_t participants) {
  if (!o.client_uplink_values.empty()) {
    double t = 0.0;
    for (const double v : o.client_uplink_values) t += v;
    return t;
  }
  return o.uplink_values * static_cast<double>(participants);
}

void bench_fleet_scale(std::vector<KernelResult>& out, std::vector<SweepRow>& sweep,
                       std::size_t n, std::size_t d, const std::string& label) {
  const std::size_t k = d / 100 + 1;
  FleetInput fleet(n, d, /*distinct=*/256);
  sparsify::RoundOutcome sharded_ref, single_ref;

  // Sharded side: pool registered, one shard per slot (the simulation's auto
  // policy). Sweep points run cheapest-first so their RSS trail is clean.
  {
    util::ThreadPool pool;
    tensor::set_parallel_pool(&pool);
    sparsify::FabTopK method(d);
    method.set_sharding(std::min<std::size_t>(16, pool.slot_count()));
    std::vector<double> w_scratch;
    std::vector<std::size_t> id_scratch;
    sparsify::RoundInput sub;
    for (const double pi_on : {0.05, 0.27}) {
      fleet.subset(pi_on, w_scratch, id_scratch, sub);
      char name[96];
      std::snprintf(name, sizeof(name), "%s_pi%02d", label.c_str(),
                    static_cast<int>(pi_on * 100));
      out.push_back(measure(name, "", static_cast<double>(sub.client_vectors.size()) * d, [&] {
        do_not_optimize(method.round(sub, k));
      }));
      out.back().peak_rss_mb = peak_rss_mb();
      const double up = total_uplink_values(method.round(sub, k), sub.client_vectors.size());
      sweep.push_back({name, pi_on, sub.client_vectors.size(), out.back().ns_per_op,
                       out.back().peak_rss_mb, up, fl::values_to_bytes(up)});
    }
    out.push_back(measure(label, label + "_singleshard", static_cast<double>(n) * d, [&] {
      do_not_optimize(method.round(fleet.in, k));
    }));
    out.back().peak_rss_mb = peak_rss_mb();
    const double telemetry_off_ns = out.back().ns_per_op;
    std::printf("    peak RSS after %-34s %8.1f MB\n", label.c_str(), peak_rss_mb());
    sharded_ref = method.round(fleet.in, k);
    const double up_full = total_uplink_values(sharded_ref, n);
    sweep.push_back({label, 1.0, n, telemetry_off_ns, out.back().peak_rss_mb, up_full,
                     fl::values_to_bytes(up_full)});

    if (label == "server_round_N10000_D128k") {
      // Telemetry overhead gate: the SAME kernel with the registry + span
      // layer live (spans recorded per shard task and drained per iteration,
      // as the simulation does per round) must stay within 3% of telemetry
      // off. Sequential A-then-B timing is useless here — by this point the
      // bench has held every core busy for minutes and turbo decay alone
      // skews a later measurement by ~4% — so the gate interleaves the two:
      // alternating off/on iterations share whatever frequency the box is
      // at, and the median per-pair ratio cancels the drift.
      util::SpanSink::instance().discard();
      std::vector<util::Span> spans;
      std::vector<double> ratios;
      for (int pair = 0; pair < 4; ++pair) {
        const auto t0 = Clock::now();
        do_not_optimize(method.round(fleet.in, k));
        const auto t1 = Clock::now();
        util::set_telemetry_enabled(true);
        const auto t2 = Clock::now();
        do_not_optimize(method.round(fleet.in, k));
        spans.clear();
        util::SpanSink::instance().drain(spans);
        const auto t3 = Clock::now();
        util::set_telemetry_enabled(false);
        if (pair == 0) continue;  // warmup pair
        const double off_s = std::chrono::duration<double>(t1 - t0).count();
        const double on_s = std::chrono::duration<double>(t3 - t2).count();
        ratios.push_back(on_s / off_s);
      }
      util::SpanSink::instance().discard();
      std::sort(ratios.begin(), ratios.end());
      const double ratio = ratios[ratios.size() / 2];
      // The JSON entry carries the paired ratio scaled onto the off kernel's
      // ns/op, so bench_compare's speedup-vs-baseline for this pair is
      // exactly 1/ratio in every run — comparable across boxes.
      KernelResult r;
      r.name = label + "_telemetry";
      r.baseline = label;
      r.iterations = ratios.size();
      r.ns_per_op = telemetry_off_ns * ratio;
      r.items_per_s = static_cast<double>(n) * d * 1e9 / r.ns_per_op;
      out.push_back(r);
      std::printf("  %-28s %12.0f ns/op  %10.3e items/s  (%zu pairs)\n", r.name.c_str(),
                  r.ns_per_op, r.items_per_s, ratios.size());
      std::printf("    telemetry overhead on %-28s %+6.2f%% (median of %zu interleaved pairs)\n",
                  label.c_str(), 100.0 * (ratio - 1.0), ratios.size());
      if (ratio > 1.03) {
        std::fprintf(stderr,
                     "FATAL: telemetry-on %s is %.2f%% slower than telemetry-off "
                     "(limit 3%%, median of %zu interleaved pairs)\n",
                     label.c_str(), 100.0 * (ratio - 1.0), ratios.size());
        std::exit(1);
      }
    }
    tensor::set_parallel_pool(nullptr);
  }

  // Single-shard serial reference of the same build: per-client workspaces,
  // three separate server passes. Runs last — its N workspaces dominate the
  // scale's RSS high-water mark and must not contaminate the sharded points.
  {
    sparsify::FabTopK method(d);
    out.push_back(measure(label + "_singleshard", "", static_cast<double>(n) * d, [&] {
      do_not_optimize(method.round(fleet.in, k));
    }));
    out.back().peak_rss_mb = peak_rss_mb();
    std::printf("    peak RSS after %-34s %8.1f MB\n", (label + "_singleshard").c_str(),
                peak_rss_mb());
    single_ref = method.round(fleet.in, k);
  }

  // The sharded path must be a pure execution-strategy change.
  if (sharded_ref.update != single_ref.update ||
      sharded_ref.reset_indices != single_ref.reset_indices ||
      sharded_ref.reset_offsets != single_ref.reset_offsets ||
      sharded_ref.contributed != single_ref.contributed) {
    std::fprintf(stderr, "FATAL: sharded round diverged from single-shard on %s\n",
                 label.c_str());
    std::exit(1);
  }
}

void write_sweep_csv(const std::vector<SweepRow>& sweep, const std::string& path) {
  std::ofstream f(path);
  f << "kernel,pi_on,participants,ns_per_op,ns_per_participant,peak_rss_mb,uplink_values,"
       "uplink_bytes\n";
  for (const auto& r : sweep) {
    f << r.kernel << "," << r.pi_on << "," << r.participants << "," << r.ns_per_op << ","
      << (r.participants > 0 ? r.ns_per_op / static_cast<double>(r.participants) : 0.0) << ","
      << r.peak_rss_mb << "," << r.uplink_values << "," << r.uplink_bytes << "\n";
  }
}

// --- event-driven round engine: buffered-async vs synchronized wall-clock ---
//
// The headline claim of the event-driven engine: under a long-tail mobile
// network the buffered-async aggregation (flush after the first M arrivals,
// deferred uploads folded into the next flush with staleness-discounted
// weight) reaches the same global loss in less *simulated* wall-clock than
// the synchronized barrier, which pays the slowest sampled straggler every
// round. Each point is one deterministic Simulation run — fixed seeds,
// simulated time units — so ns_per_op here holds the simulated
// time-to-target-loss, not a measured duration, and the async/sync ratio
// transfers across machines like any within-run speedup. The buffer sweep
// (M ∈ {25, 50, 75} of 100 sampled clients) lands in BENCH_async_sweep.csv.

struct AsyncSweepRow {
  std::string label;
  std::size_t buffer_size;  // 0 = synchronized barrier
  std::size_t rounds_run;
  double total_sim_time;
  double time_to_target;
  double best_eval_loss;
  double mean_staleness;    // averaged over rounds
  double uplink_values = 0.0;  // run-total realized client uplink
  double uplink_bytes = 0.0;
};

fl::SimulationResult run_longtail_engine(std::size_t buffer_size) {
  data::SyntheticConfig dc;
  dc.num_classes = 4;
  dc.channels = 1;
  dc.height = 4;
  dc.width = 4;
  dc.num_clients = 1000;
  dc.samples_per_client = 2;
  dc.test_samples = 64;
  dc.seed = 21;
  fl::SimulationConfig cfg;
  cfg.batch = 2;
  cfg.max_rounds = 60;
  cfg.eval_every = 5;
  cfg.eval_samples_per_client = 1;
  cfg.eval_test_samples = 32;
  cfg.participation = 0.1;  // 100 sampled clients per round
  cfg.threads = 2;
  cfg.seed = 21;
  fl::apply_scenario(fl::make_scenario("longtail_mobile", dc.num_clients, cfg.seed), cfg);
  if (buffer_size > 0) {
    cfg.aggregation = fl::AggregationMode::kBufferedAsync;
    cfg.async.buffer_size = buffer_size;
    cfg.async.staleness_lambda = 0.25;
  }
  auto factory = nn::mlp(16, {12}, 4);
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  fl::Simulation sim(cfg, data::make_synthetic(dc), factory,
                     sparsify::make_method("fab_topk", dim, 5),
                     std::make_unique<online::FixedK>(20.0));
  return sim.run();
}

double best_eval_loss(const fl::SimulationResult& res) {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& r : res.records) {
    if (!std::isnan(r.global_loss)) best = std::min(best, r.global_loss);
  }
  return best;
}

/// Simulated time at which the run's evaluated global loss first reached
/// `target` (total time when it never did — the gate then shows no win).
double time_to_loss(const fl::SimulationResult& res, double target) {
  for (const auto& r : res.records) {
    if (!std::isnan(r.global_loss) && r.global_loss <= target) return r.time;
  }
  return res.total_time;
}

void bench_async_engine(std::vector<KernelResult>& out, std::vector<AsyncSweepRow>& sweep) {
  const std::size_t buffers[] = {0, 25, 50, 75};  // 0 = synchronized barrier
  std::vector<fl::SimulationResult> runs;
  for (const std::size_t b : buffers) runs.push_back(run_longtail_engine(b));

  // Common target: the worst best-loss across all points, so every point
  // reached it and time-to-target is well defined everywhere.
  double target = 0.0;
  for (const auto& res : runs) target = std::max(target, best_eval_loss(res));

  for (std::size_t p = 0; p < runs.size(); ++p) {
    const fl::SimulationResult& res = runs[p];
    AsyncSweepRow row;
    row.label = buffers[p] == 0 ? "sync_barrier" : "async_M" + std::to_string(buffers[p]);
    row.buffer_size = buffers[p];
    row.rounds_run = res.rounds_run;
    row.total_sim_time = res.total_time;
    row.time_to_target = time_to_loss(res, target);
    row.best_eval_loss = best_eval_loss(res);
    row.mean_staleness = 0.0;
    for (const auto& r : res.records) row.mean_staleness += r.mean_staleness;
    if (!res.records.empty()) row.mean_staleness /= static_cast<double>(res.records.size());
    for (const double v : res.client_uplink_values) row.uplink_values += v;
    row.uplink_bytes = fl::values_to_bytes(row.uplink_values);
    std::printf("  %-28s time-to-loss(%.4f) = %10.1f  (%zu rounds, mean staleness %.2f)\n",
                row.label.c_str(), target, row.time_to_target, row.rounds_run,
                row.mean_staleness);
    sweep.push_back(row);
  }

  // The gated pair: sync barrier vs the headline M=50 point (half the
  // sampled cohort — flush at the median arrival instead of the tail).
  KernelResult sync_kr;
  sync_kr.name = "loss_vs_wallclock_sync_N1000_longtail";
  sync_kr.ns_per_op = sweep[0].time_to_target;  // simulated units, see above
  sync_kr.iterations = 1;
  out.push_back(sync_kr);
  KernelResult async_kr;
  async_kr.name = "loss_vs_wallclock_async_N1000_longtail";
  async_kr.baseline = sync_kr.name;
  async_kr.ns_per_op = sweep[2].time_to_target;
  async_kr.iterations = 1;
  out.push_back(async_kr);

  if (!(async_kr.ns_per_op < sync_kr.ns_per_op)) {
    std::fprintf(stderr,
                 "FATAL: buffered-async (M=50) did not reach loss %.4f in less simulated "
                 "wall-clock than the synchronized barrier (%.1f vs %.1f)\n",
                 target, async_kr.ns_per_op, sync_kr.ns_per_op);
    std::exit(1);
  }
}

void write_async_csv(const std::vector<AsyncSweepRow>& sweep, const std::string& path) {
  std::ofstream f(path);
  f << "label,buffer_size,rounds_run,total_sim_time,time_to_target,best_eval_loss,"
       "mean_staleness,uplink_values,uplink_bytes\n";
  for (const auto& r : sweep) {
    f << r.label << "," << r.buffer_size << "," << r.rounds_run << "," << r.total_sim_time << ","
      << r.time_to_target << "," << r.best_eval_loss << "," << r.mean_staleness << ","
      << r.uplink_values << "," << r.uplink_bytes << "\n";
  }
}

// --- Byzantine attack sweep: robust aggregation must restore the ordering ---
//
// Three deterministic runs of the same FAB/FixedK task (identical seeds, so
// the clean run is byte-identical to the pre-robust engine): clean, attacked
// with the defense off, attacked with the trimmed-mean robust reduce on. The
// gate pins the headline robustness claim: under a 20% colluding sign-flip
// cohort the defended run's final loss stays within 10% of the clean run,
// while the undefended mean is measurably worse than the defended one. Both
// orderings FATAL when inverted — a regression in either the adversary model
// (attack stopped biting) or the robust stage (defense stopped working).
// ns_per_op holds the final evaluated loss (a deterministic simulated metric,
// like the async-engine gate); no baseline key, so the speedup comparisons in
// CI skip these kernels.

fl::SimulationResult run_byzantine_point(bool attacked, bool defended) {
  data::SyntheticConfig dc;
  dc.num_classes = 4;
  dc.channels = 1;
  dc.height = 4;
  dc.width = 4;
  dc.num_clients = 50;
  dc.samples_per_client = 4;
  dc.test_samples = 64;
  dc.seed = 23;
  fl::SimulationConfig cfg;
  cfg.batch = 2;
  cfg.max_rounds = 60;
  cfg.eval_every = 5;
  cfg.eval_samples_per_client = 2;
  cfg.eval_test_samples = 32;
  cfg.threads = 2;
  cfg.seed = 23;
  if (attacked) {
    cfg.faults.adversary.attack = fl::AttackKind::kSignFlip;
    cfg.faults.adversary.byzantine_fraction = 0.2;
    // Cohort seed chosen so the realized cohort is exactly 10/50 — the draw
    // is per-client Bernoulli, so an unlucky seed can realize 30% and turn
    // the gate into a data-mass comparison instead of a defense comparison.
    cfg.faults.adversary.cohort_seed = 17;
    cfg.validation.enabled = true;  // both attacked points get the screen
    // Reputation quarantine holds for the whole run: a caught sign-flipper
    // contributes nothing ever again (its data is unrecoverable anyway —
    // every upload it will ever send is flipped).
    cfg.validation.quarantine_rounds = cfg.max_rounds;
  }
  if (defended) {
    cfg.robust.enabled = true;
    cfg.robust.kind = sparsify::RobustKind::kTrimmedMean;
    cfg.robust.trim_fraction = 0.25;
  }
  auto factory = nn::mlp(16, {12}, 4);
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  // k = 48 of D = 256 keeps per-coordinate support around n·k/D ≈ 9 of the
  // 50-client flush — deep enough that trimming both ends still leaves a
  // usable honest majority per coordinate.
  fl::Simulation sim(cfg, data::make_synthetic(dc), factory,
                     sparsify::make_method("fab_topk", dim, 5),
                     std::make_unique<online::FixedK>(48.0));
  return sim.run();
}

void bench_byzantine(std::vector<KernelResult>& out) {
  const fl::SimulationResult clean = run_byzantine_point(/*attacked=*/false, /*defended=*/false);
  const fl::SimulationResult undefended =
      run_byzantine_point(/*attacked=*/true, /*defended=*/false);
  const fl::SimulationResult defended = run_byzantine_point(/*attacked=*/true, /*defended=*/true);

  const double clean_loss = clean.final_loss;
  const double undefended_loss = undefended.final_loss;
  const double defended_loss = defended.final_loss;
  std::printf("  %-36s final loss %.4f\n", "byzantine_clean", clean_loss);
  std::printf("  %-36s final loss %.4f\n", "byzantine_attacked_undefended", undefended_loss);
  std::printf("  %-36s final loss %.4f\n", "byzantine_attacked_trimmed_mean", defended_loss);

  for (const auto& [name, loss] :
       {std::pair<const char*, double>{"byzantine_clean_loss", clean_loss},
        {"byzantine_undefended_loss", undefended_loss},
        {"byzantine_trimmed_mean_loss", defended_loss}}) {
    KernelResult r;
    r.name = name;
    r.ns_per_op = loss;  // simulated metric, see above
    r.iterations = 1;
    out.push_back(r);
  }

  if (!(defended_loss <= 1.10 * clean_loss)) {
    std::fprintf(stderr,
                 "FATAL: trimmed-mean under 20%% sign-flip cohort lost more than 10%% vs the "
                 "clean run (%.4f vs clean %.4f)\n",
                 defended_loss, clean_loss);
    std::exit(1);
  }
  if (!(undefended_loss > defended_loss)) {
    std::fprintf(stderr,
                 "FATAL: undefended mean under the sign-flip cohort was not worse than the "
                 "trimmed-mean defense (%.4f vs defended %.4f)\n",
                 undefended_loss, defended_loss);
    std::exit(1);
  }
}

// --- fused accumulate + threshold prescan ------------------------------------
//
// add_scan folds the hinted selection scan into the accumulation sweep: one
// pass over each dirty chunk instead of add + (summary-pruned) scan. Both
// sides reset first so every iteration does identical work on identical
// state.

void bench_fused_scan(std::vector<KernelResult>& out) {
  const std::size_t d = 1u << 20;
  const std::size_t k = d / 100;
  const auto g = random_vec(d, 17);
  // Threshold = the k-th |g| (what a warm selection hint would hold), so the
  // scan is the production shape: ~k survivors against cap 8k+64.
  std::vector<float> mags(d);
  for (std::size_t i = 0; i < d; ++i) mags[i] = std::fabs(g[i]);
  std::nth_element(mags.begin(), mags.begin() + static_cast<std::ptrdiff_t>(k - 1), mags.end(),
                   std::greater<float>());
  const float threshold = mags[k - 1];
  const std::size_t cap = sparsify::topk_hint_cap(k);

  sparsify::GradientAccumulator ref(d);
  std::vector<std::uint64_t> keys;
  out.push_back(measure("accumulator_add_then_scan_D1M", "", static_cast<double>(d), [&] {
    ref.reset_all();
    ref.add({g.data(), g.size()});
    keys.clear();
    (void)sparsify::threshold_scan_append(ref.value(), ref.chunk_max(), threshold, cap, keys);
    do_not_optimize(keys.data());
  }));
  sparsify::GradientAccumulator fused(d);
  out.push_back(measure("accumulator_add_scan_fused_D1M", "accumulator_add_then_scan_D1M",
                        static_cast<double>(d), [&] {
                          fused.reset_all();
                          keys.clear();
                          (void)fused.add_scan({g.data(), g.size()}, threshold, cap, keys);
                          do_not_optimize(keys.data());
                        }));
}

void bench_parallel_for(std::vector<KernelResult>& out) {
  util::ThreadPool pool;
  const std::size_t n = 1u << 20;
  std::vector<float> x(n, 1.0f);
  out.push_back(measure("parallel_for_chunked_1M", "", static_cast<double>(n), [&] {
    pool.parallel_for(n, [&](std::size_t i) { x[i] *= 1.0000001f; });
    do_not_optimize(x.data());
  }));
}

double find_ns(const std::vector<KernelResult>& rs, const std::string& name) {
  for (const auto& r : rs) {
    if (r.name == name) return r.ns_per_op;
  }
  return 0.0;
}

void write_json(const std::vector<KernelResult>& rs, const std::string& path) {
  std::ofstream f(path);
  f << "{\n  \"schema\": 1,\n  \"kernels\": [\n";
  for (std::size_t i = 0; i < rs.size(); ++i) {
    const auto& r = rs[i];
    f << "    {\"name\": \"" << r.name << "\", \"ns_per_op\": " << r.ns_per_op
      << ", \"items_per_s\": " << r.items_per_s << ", \"iterations\": " << r.iterations;
    if (r.peak_rss_mb > 0.0) f << ", \"peak_rss_mb\": " << r.peak_rss_mb;
    if (!r.baseline.empty()) {
      const double base = find_ns(rs, r.baseline);
      f << ", \"baseline\": \"" << r.baseline
        << "\", \"speedup_vs_baseline\": " << (r.ns_per_op > 0.0 ? base / r.ns_per_op : 0.0);
    }
    f << "}" << (i + 1 < rs.size() ? "," : "") << "\n";
  }
  f << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string path = "BENCH_micro.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      g_budget_seconds = 0.05;
    } else {
      path = argv[i];
    }
  }
  const bool quick = g_budget_seconds < 0.5;
  std::printf("fedsparse kernel microbenchmarks (budget %.2fs/kernel)\n", g_budget_seconds);
  std::vector<KernelResult> results;
  std::vector<SweepRow> sweep;
  std::vector<AsyncSweepRow> async_sweep;
  bench_topk(results);
  bench_gemm(results);
  bench_linear(results);
  bench_conv2d(results);
  bench_accumulator(results);
  bench_fused_scan(results);
  bench_fab_round(results);
  bench_round_engine(results);
  bench_tiered_rounds(results);
  bench_fleet_scale(results, sweep, 10000, 1u << 17, "server_round_N10000_D128k");
  if (!quick) {
    // The single-shard reference side holds N full per-client workspaces at
    // N=100k — multi-GB. Full runs only, so --quick CI smoke stays lean.
    bench_fleet_scale(results, sweep, 100000, 1u << 16, "server_round_N100000_D64k");
  }
  std::printf("  buffered-async vs synchronized wall-clock (deterministic, simulated time):\n");
  bench_async_engine(results, async_sweep);
  std::printf("  byzantine attack sweep (deterministic, final evaluated loss):\n");
  bench_byzantine(results);
  bench_parallel_for(results);
  write_json(results, path);
  const std::size_t slash = path.find_last_of('/');
  const std::string sweep_path =
      (slash == std::string::npos ? std::string() : path.substr(0, slash + 1)) +
      "BENCH_fleet_sweep.csv";
  write_sweep_csv(sweep, sweep_path);
  const std::string async_path =
      (slash == std::string::npos ? std::string() : path.substr(0, slash + 1)) +
      "BENCH_async_sweep.csv";
  write_async_csv(async_sweep, async_path);
  std::printf("wrote %s\n", path.c_str());
  std::printf("wrote %s\n", sweep_path.c_str());
  std::printf("wrote %s\n", async_path.c_str());
  return 0;
}
