// Shared plumbing for the figure harnesses: flag -> TrainerConfig wiring and
// CSV emission of the series each paper figure plots.
//
// Every harness prints a header comment describing the experiment, then CSV
// blocks tagged with the series name; the same rows are written under
// bench_out/<figure>/. Paper-scale parameters are reachable via flags
// (--scale=1 --model=cnn ...); defaults are sized for a small CPU box.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/fedsparse.h"

namespace fedsparse::bench {

struct CommonArgs {
  std::string dataset = "femnist";
  double scale = 0.08;          // fraction of paper-scale client count
  double proto_sparsity = 0.0;  // 0 = generator default (dense)
  std::string model = "mlp";
  long hidden = 32;
  double cnn_scale = 0.25;
  double lr = 0.05;
  long batch = 32;
  long rounds = 300;
  double beta = 10.0;
  long eval_every = 10;
  long threads = 0;
  std::uint64_t seed = 1;
  std::string out_dir = "bench_out";
};

/// Declares the flags shared by all harnesses and fills CommonArgs.
inline CommonArgs parse_common(util::Flags& flags) {
  CommonArgs a;
  a.dataset = flags.get_string("dataset", a.dataset, "femnist|cifar");
  a.scale = flags.get_double("scale", a.scale, "client-count scale (1 = paper scale)");
  a.proto_sparsity = flags.get_double(
      "proto_sparsity", 0.0, "prototype sparsity override in (0,1]; 0 = dense default");
  a.model = flags.get_string("model", a.model, "mlp|logistic|cnn");
  a.hidden = flags.get_int("hidden", a.hidden, "mlp hidden width");
  a.cnn_scale = flags.get_double("cnn_scale", a.cnn_scale, "cnn channel scale");
  a.lr = flags.get_double("lr", a.lr, "SGD step size");
  a.batch = flags.get_int("batch", a.batch, "minibatch size");
  a.rounds = flags.get_int("rounds", a.rounds, "max training rounds per run");
  a.beta = flags.get_double("beta", a.beta, "communication time of a full exchange");
  a.eval_every = flags.get_int("eval_every", a.eval_every, "evaluation cadence (rounds)");
  a.threads = flags.get_int("threads", a.threads, "worker threads (0 = auto)");
  a.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1, "master seed"));
  a.out_dir = flags.get_string("out_dir", a.out_dir, "CSV output directory");
  return a;
}

inline core::TrainerConfig base_config(const CommonArgs& a) {
  core::TrainerConfig cfg;
  cfg.dataset.name = a.dataset;
  cfg.dataset.scale = a.scale;
  cfg.dataset.prototype_sparsity = a.proto_sparsity;
  cfg.dataset.seed = a.seed;
  cfg.model.name = a.model;
  cfg.model.hidden = static_cast<std::size_t>(a.hidden);
  cfg.model.cnn_scale = a.cnn_scale;
  cfg.sim.lr = static_cast<float>(a.lr);
  cfg.sim.batch = static_cast<std::size_t>(a.batch);
  cfg.sim.max_rounds = static_cast<std::size_t>(a.rounds);
  cfg.sim.comm_time = a.beta;
  cfg.sim.eval_every = static_cast<std::size_t>(a.eval_every);
  cfg.sim.threads = static_cast<std::size_t>(a.threads);
  cfg.sim.seed = a.seed;
  return cfg;
}

/// Writes a (time, loss, accuracy) curve for one labelled run. The
/// uplink/downlink columns report the round's realized traffic both in
/// timing-model values and in bytes (fl::values_to_bytes — one value is a
/// 32-bit float), so comm columns compare directly with bytes-on-wire work.
/// The trailing dropped/corrupted/quarantined columns are the per-round fault
/// and defense counters (fl/faults.h, sparsify/validate.h) — all zero unless
/// the run's scenario or config injects faults.
inline void emit_curves(const std::string& out_dir, const std::string& figure,
                        const std::string& label, const fl::SimulationResult& res) {
  util::CsvWriter csv(out_dir + "/" + figure + "/" + label + "_curve.csv",
                      /*echo_stdout=*/true, figure + "/" + label);
  csv.header({"round", "time", "global_loss", "accuracy", "k", "uplink_values", "uplink_bytes",
              "downlink_values", "downlink_bytes", "dropped", "corrupted", "quarantined"});
  for (const auto& r : res.records) {
    if (std::isnan(r.global_loss)) continue;
    csv.row({static_cast<double>(r.round), r.time, r.global_loss, r.accuracy, r.k_continuous,
             r.uplink_values, fl::values_to_bytes(r.uplink_values), r.downlink_values,
             fl::values_to_bytes(r.downlink_values), static_cast<double>(r.dropped),
             static_cast<double>(r.corrupted), static_cast<double>(r.quarantined)});
  }
}

/// Writes the k_m trace of an adaptive run.
inline void emit_k_trace(const std::string& out_dir, const std::string& figure,
                         const std::string& label, const fl::SimulationResult& res) {
  util::CsvWriter csv(out_dir + "/" + figure + "/" + label + "_k.csv",
                      /*echo_stdout=*/true, figure + "/" + label + "_k");
  csv.header({"round", "k"});
  for (std::size_t i = 0; i < res.k_sequence.size(); ++i) {
    csv.row({static_cast<double>(i + 1), res.k_sequence[i]});
  }
}

/// Runs a trainer-shaped experiment with an explicitly constructed controller
/// (needed for ReplayK, which carries a recorded sequence rather than flags).
inline fl::SimulationResult run_with_controller(const core::TrainerConfig& cfg,
                                                std::unique_ptr<online::KController> controller) {
  const auto data_cfg = core::resolve_dataset(cfg.dataset);
  auto factory = core::resolve_model(cfg.model, data_cfg);
  util::Rng probe(7);
  const std::size_t dim = factory(probe)->dim();
  fl::Simulation sim(cfg.sim, data::make_synthetic(data_cfg), factory,
                     sparsify::make_method(cfg.method, dim, cfg.sim.seed ^ 0x3E7ULL),
                     std::move(controller));
  return sim.run();
}

inline void banner(const char* figure, const char* what) {
  std::printf("# %s — %s\n", figure, what);
  std::printf("# reproduction of: Adaptive Gradient Sparsification for Efficient Federated "
              "Learning (ICDCS 2020)\n");
}

}  // namespace fedsparse::bench
